//! The dictionary: learning, lookup, and vote-based recognition.
//!
//! Keys are [`Fingerprint`]s; values are **insertion-ordered** lists of
//! `application + input size` labels (the paper's Table 4 format). When
//! recognition ties, the EFD "will return an array of these application
//! names" — the [`Verdict::Ambiguous`] array preserves first-learned order,
//! as the paper's Table 4 prints it. Scoring a tie with
//! [`Recognition::best`] uses a *deterministic* rule instead
//! (lexicographically smallest tied name) so results do not depend on
//! learn order; see its docs.
//!
//! Recognition: every point of a query is fingerprinted and looked up; each
//! hit votes once for every application *name* in the entry (the paper
//! aggregates over the whole execution, across nodes). Most votes wins;
//! zero matches is the in-built [`Verdict::Unknown`] safeguard.

use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
use efd_util::table::TextTable;
use efd_util::{Align, FxHashMap};

use crate::fingerprint::{fmt_mean, Fingerprint};
use crate::observation::{LabeledObservation, Query};
use crate::rounding::RoundingDepth;

/// Interned label (application + input size) within one dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(u32);

impl LabelId {
    /// The position of this label in [`EfdDictionary::labels_in_order`]
    /// (and in [`DictionaryParts::labels`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from an index previously obtained via
    /// [`LabelId::index`] — used when thawing [`DictionaryParts`] into a
    /// different container (e.g. a sharded serving structure).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        LabelId(index as u32)
    }
}

/// Interned application name within one dictionary (tie-break order =
/// first-seen order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppNameId(u32);

impl AppNameId {
    /// The position of this application in [`EfdDictionary::app_names`]
    /// (and in [`DictionaryParts::apps`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an id from an index previously obtained via
    /// [`AppNameId::index`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        AppNameId(index as u32)
    }
}

/// The Execution Fingerprint Dictionary (paper §4, Figure 1).
///
/// Learning inserts rounded window means as keys (step 1); recognition
/// fingerprints a query the same way, looks every point up, and lets each
/// hit vote for the applications stored under it (steps 2–3).
///
/// ```
/// use efd_core::{EfdDictionary, Query, RoundingDepth};
/// use efd_core::dictionary::Verdict;
/// use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
///
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// // Learn one 4-node execution of NPB `ft`, input X.
/// for (node, mean) in [6020.0, 6023.0, 6019.0, 6021.0].into_iter().enumerate() {
///     dict.insert_raw(MetricId(0), NodeId(node as u16), Interval::PAPER_DEFAULT,
///                     mean, &AppLabel::new("ft", "X"));
/// }
/// // A later execution with similar-but-not-identical means still matches:
/// // every mean rounds to the same 6000.0 key.
/// let query = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT,
///                                    &[6031.0, 5988.0, 6007.0, 6044.0]);
/// let r = dict.recognize(&query);
/// assert_eq!(r.verdict, Verdict::Recognized("ft".into()));
/// assert_eq!(r.matched_points, 4);
/// ```
#[derive(Debug, Clone)]
pub struct EfdDictionary {
    depth: RoundingDepth,
    map: FxHashMap<Fingerprint, Vec<LabelId>>,
    /// Keys in first-insertion order (stable rendering, reproducible
    /// dumps).
    order: Vec<Fingerprint>,
    labels: Vec<AppLabel>,
    label_ids: FxHashMap<AppLabel, LabelId>,
    apps: Vec<String>,
    app_ids: FxHashMap<String, AppNameId>,
    /// LabelId → AppNameId.
    label_app: Vec<AppNameId>,
}

/// Outcome of recognizing one execution.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm so
/// future verdict refinements (e.g. a confidence-scored variant) are not
/// semver breaks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[must_use = "a verdict is the answer; dropping it silently discards the recognition"]
pub enum Verdict {
    /// Exactly one application had the most matches.
    Recognized(String),
    /// Several applications tied for the most matches; ordered
    /// first-learned, as the paper prints the array. Scoring a tie uses
    /// [`Recognition::best`]'s deterministic lexicographic rule, not the
    /// array position.
    Ambiguous(Vec<String>),
    /// No fingerprint matched: never-seen execution (the paper's safeguard
    /// against unknown applications).
    Unknown,
}

/// Full recognition report.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a recognition is the answer; inspect its verdict or votes"]
pub struct Recognition {
    /// The verdict (see [`Verdict`]).
    pub verdict: Verdict,
    /// Application vote counts, descending (equal counts in first-learned
    /// order here; [`Recognition::normalized`] re-orders them
    /// lexicographically).
    pub app_votes: Vec<(String, u32)>,
    /// Full-label vote counts (application + input), same ordering rules —
    /// the paper's dictionary stores input sizes, so the EFD can also
    /// predict them.
    pub label_votes: Vec<(AppLabel, u32)>,
    /// How many query points matched an entry.
    pub matched_points: usize,
    /// Total query points.
    pub total_points: usize,
}

impl Recognition {
    /// The application name the paper's evaluation scores. `None` for
    /// [`Verdict::Unknown`].
    ///
    /// **Tie-break rule:** when several applications tie for the most
    /// votes ([`Verdict::Ambiguous`]), `best` returns the
    /// **lexicographically smallest** tied application name. The rule is
    /// deterministic and independent of learn order — two dictionaries
    /// holding the same entries agree on `best` even if they learned the
    /// same observations in different orders (or concurrently, as the
    /// sharded serving layer does). Earlier versions returned the
    /// *first-learned* tied application, which silently depended on
    /// `Vec<LabelId>` insertion order.
    ///
    /// ```
    /// use efd_core::dictionary::{Recognition, Verdict};
    ///
    /// let r = Recognition {
    ///     verdict: Verdict::Ambiguous(vec!["sp".into(), "bt".into()]),
    ///     app_votes: vec![("sp".into(), 4), ("bt".into(), 4)],
    ///     label_votes: vec![],
    ///     matched_points: 4,
    ///     total_points: 4,
    /// };
    /// // "bt" < "sp" lexicographically, regardless of array order.
    /// assert_eq!(r.best(), Some("bt"));
    /// ```
    pub fn best(&self) -> Option<&str> {
        match &self.verdict {
            Verdict::Recognized(a) => Some(a),
            Verdict::Ambiguous(apps) => apps.iter().map(String::as_str).min(),
            Verdict::Unknown => None,
        }
    }

    /// Canonical form with all orderings made deterministic: votes sort by
    /// count descending, then lexicographically by application name (for
    /// `app_votes`) or by `(app, input)` (for `label_votes`); an
    /// [`Verdict::Ambiguous`] tie array sorts lexicographically.
    ///
    /// Two recognitions over dictionaries with identical *content* but
    /// different learn order normalize to equal values — the
    /// oracle-equivalence contract the sharded serving layer is tested
    /// against.
    pub fn normalized(mut self) -> Recognition {
        self.app_votes
            .sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        self.label_votes.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| (&a.0.app, &a.0.input).cmp(&(&b.0.app, &b.0.input)))
        });
        if let Verdict::Ambiguous(apps) = &mut self.verdict {
            apps.sort();
        }
        self
    }

    /// Most-voted full label (application + input size), if any matched.
    pub fn predicted_label(&self) -> Option<&AppLabel> {
        self.label_votes.first().map(|(l, _)| l)
    }
}

/// Structural statistics of a dictionary (the paper's
/// exclusiveness/repetition trade-off, quantified).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DictionaryStats {
    /// Number of keys.
    pub entries: usize,
    /// Number of distinct labels (app + input).
    pub labels: usize,
    /// Number of distinct application names.
    pub apps: usize,
    /// Entries whose labels all share one application name ("application
    /// exclusive execution fingerprints").
    pub exclusive_entries: usize,
    /// Entries spanning more than one application (key collisions, e.g.
    /// SP/BT in Table 4).
    pub colliding_entries: usize,
    /// Largest number of distinct apps on one key.
    pub max_apps_per_entry: usize,
    /// Mean labels per entry (repetition count).
    pub mean_labels_per_entry: f64,
    /// Rough memory footprint in bytes (keys + label lists).
    pub approx_bytes: usize,
}

/// Owned decomposition of an [`EfdDictionary`] — the freeze/thaw format.
///
/// `into_parts` / `from_parts` let a learned dictionary move between
/// containers **without re-learning**: the serving layer thaws parts into
/// hash-partitioned shards, merge tooling concatenates parts, tests build
/// fixtures directly. All invariants of the source dictionary are carried:
/// entries stay in insertion order, `LabelId`s index [`Self::labels`], and
/// [`Self::label_app`] maps every label to its application's position in
/// [`Self::apps`].
#[derive(Debug, Clone)]
#[must_use = "parts hold the frozen dictionary content; thaw or freeze them"]
pub struct DictionaryParts {
    /// Rounding depth the entries were built with.
    pub depth: RoundingDepth,
    /// `(key, labels)` pairs in first-insertion order.
    pub entries: Vec<(Fingerprint, Vec<LabelId>)>,
    /// Interned labels; `LabelId(i)` names `labels[i]`.
    pub labels: Vec<AppLabel>,
    /// Interned application names; `AppNameId(i)` names `apps[i]`.
    pub apps: Vec<String>,
    /// `labels[i]`'s application is `apps[label_app[i].index()]`.
    pub label_app: Vec<AppNameId>,
}

impl EfdDictionary {
    /// Empty dictionary pruning at `depth`.
    pub fn new(depth: RoundingDepth) -> Self {
        Self {
            depth,
            map: FxHashMap::default(),
            order: Vec::new(),
            labels: Vec::new(),
            label_ids: FxHashMap::default(),
            apps: Vec::new(),
            app_ids: FxHashMap::default(),
            label_app: Vec::new(),
        }
    }

    /// The rounding depth this dictionary was built with.
    pub fn depth(&self) -> RoundingDepth {
        self.depth
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the dictionary holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Distinct labels learned.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Distinct application names learned, in first-learned order.
    pub fn app_names(&self) -> &[String] {
        &self.apps
    }

    fn intern_label(&mut self, label: &AppLabel) -> LabelId {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let app_id = match self.app_ids.get(&label.app) {
            Some(&a) => a,
            None => {
                let a = AppNameId(self.apps.len() as u32);
                self.apps.push(label.app.clone());
                self.app_ids.insert(label.app.clone(), a);
                a
            }
        };
        let id = LabelId(self.labels.len() as u32);
        self.labels.push(label.clone());
        self.label_ids.insert(label.clone(), id);
        self.label_app.push(app_id);
        id
    }

    /// Pre-intern labels in a given order without inserting any keys.
    ///
    /// Tie-breaking between applications follows *first-learned* order;
    /// serialization records that order and restore replays it here before
    /// re-inserting entries, so restored dictionaries break ties
    /// identically (see `serialize`).
    pub fn preregister_labels(&mut self, labels: &[AppLabel]) {
        for l in labels {
            self.intern_label(l);
        }
    }

    /// All labels in first-learned order (the tie-break order).
    pub fn labels_in_order(&self) -> &[AppLabel] {
        &self.labels
    }

    /// Insert one raw mean under `label`. Returns `false` (no-op) for
    /// non-finite means. Duplicate (key, label) pairs are ignored, so
    /// repeated executions "prune" into one entry — the paper's Figure 1
    /// step (1).
    pub fn insert_raw(
        &mut self,
        metric: MetricId,
        node: NodeId,
        interval: Interval,
        raw_mean: f64,
        label: &AppLabel,
    ) -> bool {
        let Some(fp) = Fingerprint::from_raw(metric, node, interval, raw_mean, self.depth) else {
            return false;
        };
        let id = self.intern_label(label);
        match self.map.get_mut(&fp) {
            Some(list) => {
                if !list.contains(&id) {
                    list.push(id);
                }
            }
            None => {
                self.map.insert(fp, vec![id]);
                self.order.push(fp);
            }
        }
        true
    }

    /// Learn every point of a labeled observation.
    pub fn learn(&mut self, obs: &LabeledObservation) {
        for p in &obs.query.points {
            self.insert_raw(p.metric, p.node, p.interval, p.mean, &obs.label);
        }
    }

    /// Learn a batch of observations (dataset order = insertion order,
    /// which fixes tie-break order).
    pub fn learn_all(&mut self, observations: &[LabeledObservation]) {
        for o in observations {
            self.learn(o);
        }
    }

    /// Labels stored under a fingerprint, in insertion order.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<Vec<&AppLabel>> {
        self.map
            .get(fp)
            .map(|ids| ids.iter().map(|id| &self.labels[id.0 as usize]).collect())
    }

    /// Round a raw mean and look it up.
    pub fn lookup_raw(
        &self,
        metric: MetricId,
        node: NodeId,
        interval: Interval,
        raw_mean: f64,
    ) -> Option<Vec<&AppLabel>> {
        let fp = Fingerprint::from_raw(metric, node, interval, raw_mean, self.depth)?;
        self.lookup(&fp)
    }

    /// Recognize an execution: fingerprint every point, look it up, count
    /// votes per application name, return the most-matched (paper Figure 1
    /// steps (2)–(3)).
    pub fn recognize(&self, query: &Query) -> Recognition {
        let mut app_votes: FxHashMap<AppNameId, u32> = FxHashMap::default();
        let mut label_votes: FxHashMap<LabelId, u32> = FxHashMap::default();
        let mut matched_points = 0usize;

        let mut entry_apps: Vec<AppNameId> = Vec::new();
        for p in &query.points {
            let Some(fp) =
                Fingerprint::from_raw(p.metric, p.node, p.interval, p.mean, self.depth)
            else {
                continue;
            };
            let Some(ids) = self.map.get(&fp) else {
                continue;
            };
            matched_points += 1;
            entry_apps.clear();
            for &id in ids {
                *label_votes.entry(id).or_default() += 1;
                let app = self.label_app[id.0 as usize];
                // One vote per app per matched point, even if several
                // inputs of the same app share the entry.
                if !entry_apps.contains(&app) {
                    entry_apps.push(app);
                    *app_votes.entry(app).or_default() += 1;
                }
            }
        }

        // Sort by votes desc, then first-learned order.
        let mut app_votes: Vec<(AppNameId, u32)> = app_votes.into_iter().collect();
        app_votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut label_votes: Vec<(LabelId, u32)> = label_votes.into_iter().collect();
        label_votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));

        let verdict = match app_votes.as_slice() {
            [] => Verdict::Unknown,
            [(top, _)] => Verdict::Recognized(self.apps[top.0 as usize].clone()),
            [(top, top_votes), rest @ ..] => {
                let tied: Vec<String> = std::iter::once(*top)
                    .chain(
                        rest.iter()
                            .take_while(|(_, v)| v == top_votes)
                            .map(|(a, _)| *a),
                    )
                    .map(|a| self.apps[a.0 as usize].clone())
                    .collect();
                if tied.len() == 1 {
                    Verdict::Recognized(tied.into_iter().next().unwrap())
                } else {
                    Verdict::Ambiguous(tied)
                }
            }
        };

        Recognition {
            verdict,
            app_votes: app_votes
                .into_iter()
                .map(|(a, v)| (self.apps[a.0 as usize].clone(), v))
                .collect(),
            label_votes: label_votes
                .into_iter()
                .map(|(l, v)| (self.labels[l.0 as usize].clone(), v))
                .collect(),
            matched_points,
            total_points: query.points.len(),
        }
    }

    /// Decompose into [`DictionaryParts`], consuming the dictionary.
    ///
    /// The parts round-trip through [`EfdDictionary::from_parts`] and can
    /// be frozen into the sharded serving structures without re-learning.
    ///
    /// ```
    /// use efd_core::{EfdDictionary, RoundingDepth};
    /// use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
    ///
    /// let mut d = EfdDictionary::new(RoundingDepth::new(2));
    /// d.insert_raw(MetricId(0), NodeId(0), Interval::PAPER_DEFAULT, 6020.0,
    ///              &AppLabel::new("ft", "X"));
    /// let parts = d.into_parts();
    /// assert_eq!(parts.entries.len(), 1);
    /// let back = EfdDictionary::from_parts(parts);
    /// assert_eq!(back.len(), 1);
    /// assert_eq!(back.app_names(), ["ft".to_string()]);
    /// ```
    pub fn into_parts(mut self) -> DictionaryParts {
        let entries = self
            .order
            .iter()
            .map(|fp| (*fp, self.map.remove(fp).expect("ordered key present")))
            .collect();
        DictionaryParts {
            depth: self.depth,
            entries,
            labels: self.labels,
            apps: self.apps,
            label_app: self.label_app,
        }
    }

    /// Clone-out variant of [`EfdDictionary::into_parts`] for dictionaries
    /// that must stay live (e.g. still learning while a frozen copy is
    /// published for serving). Copies only what the parts carry — the
    /// interner lookup maps are not cloned.
    pub fn to_parts(&self) -> DictionaryParts {
        DictionaryParts {
            depth: self.depth,
            entries: self
                .order
                .iter()
                .map(|fp| (*fp, self.map[fp].clone()))
                .collect(),
            labels: self.labels.clone(),
            apps: self.apps.clone(),
            label_app: self.label_app.clone(),
        }
    }

    /// Rebuild a dictionary from [`DictionaryParts`].
    ///
    /// Insertion order — and therefore entry iteration order — is taken
    /// from `parts.entries`. A fingerprint appearing in several entries
    /// (hand-concatenated parts) **merges**: later label lists append to
    /// the first occurrence, duplicates pruned, like repeated
    /// [`EfdDictionary::insert_raw`] calls.
    ///
    /// # Panics
    ///
    /// Panics if the parts are internally inconsistent: `label_app` not the
    /// same length as `labels`, or an id in `entries`/`label_app` out of
    /// range. Parts produced by [`EfdDictionary::into_parts`] are always
    /// consistent.
    pub fn from_parts(parts: DictionaryParts) -> Self {
        assert_eq!(
            parts.label_app.len(),
            parts.labels.len(),
            "label_app must map every label"
        );
        assert!(
            parts.label_app.iter().all(|a| a.index() < parts.apps.len()),
            "label_app id out of range"
        );
        let label_ids = parts
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), LabelId::from_index(i)))
            .collect();
        let app_ids = parts
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), AppNameId::from_index(i)))
            .collect();
        let mut map = FxHashMap::default();
        let mut order = Vec::with_capacity(parts.entries.len());
        for (fp, ids) in parts.entries {
            assert!(
                ids.iter().all(|id| id.index() < parts.labels.len()),
                "entry label id out of range"
            );
            match map.entry(fp) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let list: &mut Vec<LabelId> = e.get_mut();
                    for id in ids {
                        if !list.contains(&id) {
                            list.push(id);
                        }
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    // Dedup within the list too: hand-built parts may
                    // repeat an id, and no insert_raw history can produce
                    // a key holding the same label twice.
                    let mut list = Vec::with_capacity(ids.len());
                    for id in ids {
                        if !list.contains(&id) {
                            list.push(id);
                        }
                    }
                    e.insert(list);
                    order.push(fp);
                }
            }
        }
        Self {
            depth: parts.depth,
            map,
            order,
            labels: parts.labels,
            label_ids,
            apps: parts.apps,
            app_ids,
            label_app: parts.label_app,
        }
    }

    /// Entries in insertion order: `(fingerprint, labels)`.
    pub fn entries(&self) -> impl Iterator<Item = (&Fingerprint, Vec<&AppLabel>)> + '_ {
        self.order.iter().map(move |fp| {
            let labels = self.map[fp]
                .iter()
                .map(|id| &self.labels[id.0 as usize])
                .collect();
            (fp, labels)
        })
    }

    /// Structural statistics.
    pub fn stats(&self) -> DictionaryStats {
        let mut exclusive = 0usize;
        let mut colliding = 0usize;
        let mut max_apps = 0usize;
        let mut total_labels = 0usize;
        let mut apps_seen: Vec<AppNameId> = Vec::new();
        for ids in self.map.values() {
            total_labels += ids.len();
            apps_seen.clear();
            for &id in ids {
                let a = self.label_app[id.0 as usize];
                if !apps_seen.contains(&a) {
                    apps_seen.push(a);
                }
            }
            max_apps = max_apps.max(apps_seen.len());
            if apps_seen.len() <= 1 {
                exclusive += 1;
            } else {
                colliding += 1;
            }
        }
        let entries = self.map.len();
        DictionaryStats {
            entries,
            labels: self.labels.len(),
            apps: self.apps.len(),
            exclusive_entries: exclusive,
            colliding_entries: colliding,
            max_apps_per_entry: max_apps,
            mean_labels_per_entry: if entries == 0 {
                0.0
            } else {
                total_labels as f64 / entries as f64
            },
            approx_bytes: entries * (std::mem::size_of::<Fingerprint>() + 16)
                + total_labels * std::mem::size_of::<LabelId>(),
        }
    }

    /// Render the dictionary as the paper's Table 4.
    pub fn render_table4(&self, catalog: &MetricCatalog) -> TextTable {
        let mut t = TextTable::new(vec![
            "Metric Name",
            "Node",
            "Interval",
            "Mean",
            "Value (application + input size)",
        ])
        .with_title(format!(
            "Example Execution Fingerprint Dictionary (rounding depth {})",
            self.depth
        ))
        .with_aligns(vec![
            Align::Left,
            Align::Right,
            Align::Center,
            Align::Right,
            Align::Left,
        ]);
        for (fp, labels) in self.entries() {
            let value = labels
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            t.add_row(vec![
                catalog.name(fp.metric).to_string(),
                fp.node.to_string(),
                fp.interval.to_string(),
                fmt_mean(fp.mean()),
                value,
            ]);
        }
        t
    }
}

impl crate::engine::Learn for EfdDictionary {
    fn learn(&mut self, obs: &LabeledObservation) {
        EfdDictionary::learn(self, obs);
    }

    fn learn_all(&mut self, observations: &[LabeledObservation]) {
        EfdDictionary::learn_all(self, observations);
    }
}

/// The oracle as an engine backend.
///
/// Unlike the inherent [`EfdDictionary::recognize`] (which preserves the
/// paper's first-learned tie-array ordering for Table 4 fidelity), the
/// trait path counts votes in dense [`crate::engine::VoteScratch`]
/// counters and returns the [`Recognition::normalized`] form — the engine
/// API's answer contract. The two agree modulo `normalized()`.
impl crate::engine::Recognize for EfdDictionary {
    fn recognize_into(
        &self,
        query: &Query,
        scratch: &mut crate::engine::VoteScratch,
    ) -> Recognition {
        scratch.ensure(self.labels.len(), self.apps.len());
        let mut matched = 0usize;
        for p in &query.points {
            let Some(fp) =
                Fingerprint::from_raw(p.metric, p.node, p.interval, p.mean, self.depth)
            else {
                continue;
            };
            let Some(ids) = self.map.get(&fp) else {
                continue;
            };
            matched += 1;
            scratch.begin_point();
            for &id in ids {
                scratch.vote_label(id);
                scratch.vote_app_deduped(self.label_app[id.0 as usize]);
            }
        }
        scratch.finish(&self.labels, &self.apps, matched, query.points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::ObsPoint;

    const M: MetricId = MetricId(0);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn lab(app: &str, input: &str) -> AppLabel {
        AppLabel::new(app, input)
    }

    /// A miniature Table 4: ft at ~6000, sp/bt colliding at ~7500 (depth
    /// 2), miniAMR input-dependent.
    fn toy_dict() -> EfdDictionary {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, input, means) in [
            ("ft", "X", [6020.0, 6020.0, 6020.0, 6020.0]),
            ("ft", "Y", [6023.0, 6019.0, 6021.0, 6018.0]),
            ("sp", "X", [7617.0, 7520.0, 7520.0, 7121.0]),
            ("bt", "X", [7638.0, 7540.0, 7540.0, 7140.0]),
            ("miniAMR", "X", [7820.0; 4]),
            ("miniAMR", "Z", [10980.0; 4]),
        ] {
            for (n, &mean) in means.iter().enumerate() {
                d.insert_raw(M, NodeId(n as u16), W, mean, &lab(app, input));
            }
        }
        d
    }

    fn query(means: [f64; 4]) -> Query {
        Query::from_node_means(M, W, &means)
    }

    #[test]
    fn pruning_dedupes_repeated_executions() {
        let d = toy_dict();
        // ft X and ft Y all round to 6000 per node → 4 keys, each holding
        // both labels.
        let fp = Fingerprint::from_rounded(M, NodeId(0), W, 6000.0);
        let labels = d.lookup(&fp).unwrap();
        assert_eq!(
            labels.iter().map(|l| l.to_string()).collect::<Vec<_>>(),
            vec!["ft X", "ft Y"]
        );
    }

    #[test]
    fn recognize_exclusive_app() {
        let d = toy_dict();
        let r = d.recognize(&query([6031.0, 5988.0, 6007.0, 6044.0]));
        assert_eq!(r.verdict, Verdict::Recognized("ft".into()));
        assert_eq!(r.best(), Some("ft"));
        assert_eq!(r.matched_points, 4);
        assert_eq!(r.app_votes[0], ("ft".into(), 4));
    }

    #[test]
    fn sp_bt_collision_yields_tie_array_sp_first() {
        let d = toy_dict();
        // At depth 2, SP and BT share every key; SP was learned first.
        let r = d.recognize(&query([7601.0, 7512.0, 7533.0, 7098.0]));
        assert_eq!(
            r.verdict,
            Verdict::Ambiguous(vec!["sp".into(), "bt".into()])
        );
        // best() breaks the tie deterministically: lexicographic minimum,
        // independent of which app was learned first.
        assert_eq!(r.best(), Some("bt"));
    }

    #[test]
    fn best_tie_break_independent_of_learn_order() {
        // Learn sp-then-bt and bt-then-sp: the Ambiguous arrays differ
        // (first-learned order) but best() agrees.
        let mut forward = EfdDictionary::new(RoundingDepth::new(2));
        let mut reverse = EfdDictionary::new(RoundingDepth::new(2));
        let means = [7617.0, 7520.0, 7520.0, 7121.0];
        for (d, apps) in [(&mut forward, ["sp", "bt"]), (&mut reverse, ["bt", "sp"])] {
            for app in apps {
                for (n, &mean) in means.iter().enumerate() {
                    d.insert_raw(M, NodeId(n as u16), W, mean, &lab(app, "X"));
                }
            }
        }
        let q = query([7601.0, 7512.0, 7533.0, 7098.0]);
        let (f, r) = (forward.recognize(&q), reverse.recognize(&q));
        assert_eq!(f.verdict, Verdict::Ambiguous(vec!["sp".into(), "bt".into()]));
        assert_eq!(r.verdict, Verdict::Ambiguous(vec!["bt".into(), "sp".into()]));
        assert_eq!(f.best(), Some("bt"));
        assert_eq!(r.best(), Some("bt"));
        // And the normalized forms are fully equal.
        assert_eq!(f.normalized(), r.normalized());
    }

    #[test]
    fn from_parts_merges_duplicate_fingerprints() {
        // Hand-concatenated parts can repeat a key: later lists append to
        // the first occurrence (deduped), like repeated insert_raw calls.
        let d = toy_dict();
        let mut parts = d.to_parts();
        let fp = parts.entries[0].0; // 6000.0/node0, labels [ft X, ft Y]
        let sp_id = LabelId::from_index(2); // "sp X" in toy_dict learn order
        parts.entries.push((fp, vec![sp_id, LabelId::from_index(0)]));
        let merged = EfdDictionary::from_parts(parts);
        assert_eq!(merged.len(), d.len(), "no new key, merged in place");
        let labels = merged.lookup(&fp).unwrap();
        assert_eq!(
            labels.iter().map(|l| l.to_string()).collect::<Vec<_>>(),
            vec!["ft X", "ft Y", "sp X"]
        );
    }

    #[test]
    fn parts_roundtrip_preserves_everything() {
        let d = toy_dict();
        let q = query([7601.0, 7512.0, 7533.0, 7098.0]);
        let before = d.recognize(&q);
        let stats_before = d.stats();
        let back = EfdDictionary::from_parts(d.into_parts());
        assert_eq!(back.recognize(&q), before);
        assert_eq!(back.stats(), stats_before);
        // Entry iteration order survives the round trip.
        let first = back.entries().next().unwrap();
        assert_eq!(first.0.mean(), 6000.0);
    }

    #[test]
    fn depth3_separates_sp_from_bt() {
        let mut d = EfdDictionary::new(RoundingDepth::new(3));
        for (n, mean) in [7617.0, 7520.0, 7520.0, 7121.0].iter().enumerate() {
            d.insert_raw(M, NodeId(n as u16), W, *mean, &lab("sp", "X"));
        }
        for (n, mean) in [7638.0, 7540.0, 7540.0, 7140.0].iter().enumerate() {
            d.insert_raw(M, NodeId(n as u16), W, *mean, &lab("bt", "X"));
        }
        let r = d.recognize(&query([7622.0, 7518.0, 7521.0, 7119.0]));
        assert_eq!(r.verdict, Verdict::Recognized("sp".into()));
        let r = d.recognize(&query([7641.0, 7542.0, 7538.0, 7142.0]));
        assert_eq!(r.verdict, Verdict::Recognized("bt".into()));
    }

    #[test]
    fn unknown_when_nothing_matches() {
        let d = toy_dict();
        let r = d.recognize(&query([1.0, 2.0, 3.0, 4.0]));
        assert_eq!(r.verdict, Verdict::Unknown);
        assert_eq!(r.best(), None);
        assert_eq!(r.matched_points, 0);
        assert_eq!(r.total_points, 4);
    }

    #[test]
    fn majority_wins_over_partial_matches() {
        let d = toy_dict();
        // 3 nodes look like ft, 1 node collides with miniAMR X.
        let r = d.recognize(&query([6000.0, 6000.0, 6000.0, 7800.0]));
        assert_eq!(r.verdict, Verdict::Recognized("ft".into()));
        assert_eq!(r.app_votes[0], ("ft".into(), 3));
        assert_eq!(r.app_votes[1], ("miniAMR".into(), 1));
    }

    #[test]
    fn input_size_prediction() {
        let d = toy_dict();
        let r = d.recognize(&query([10951.0, 11020.0, 10990.0, 11043.0]));
        assert_eq!(r.verdict, Verdict::Recognized("miniAMR".into()));
        assert_eq!(r.predicted_label().unwrap().to_string(), "miniAMR Z");
    }

    #[test]
    fn nan_points_do_not_match() {
        let d = toy_dict();
        let q = Query {
            points: vec![ObsPoint {
                metric: M,
                node: NodeId(0),
                interval: W,
                mean: f64::NAN,
            }],
        };
        let r = d.recognize(&q);
        assert_eq!(r.verdict, Verdict::Unknown);
        assert_eq!(r.total_points, 1);
    }

    #[test]
    fn insert_nan_is_noop() {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        assert!(!d.insert_raw(M, NodeId(0), W, f64::NAN, &lab("ft", "X")));
        assert!(d.is_empty());
    }

    #[test]
    fn stats_count_collisions() {
        let d = toy_dict();
        let s = d.stats();
        // Keys: ft 6000×4 nodes, sp/bt shared ×4, miniAMR X 7800×4,
        // miniAMR Z 11000×4 = 16 entries.
        assert_eq!(s.entries, 16);
        assert_eq!(s.apps, 4);
        assert_eq!(s.labels, 6);
        assert_eq!(s.colliding_entries, 4); // the sp/bt keys
        assert_eq!(s.exclusive_entries, 12);
        assert_eq!(s.max_apps_per_entry, 2);
        assert!(s.approx_bytes > 0);
    }

    #[test]
    fn entries_iterate_in_insertion_order() {
        let d = toy_dict();
        let first = d.entries().next().unwrap();
        assert_eq!(first.0.mean(), 6000.0);
        assert_eq!(first.0.node, NodeId(0));
    }

    #[test]
    fn render_table4_shape() {
        let d = toy_dict();
        let s = d.render_table4(&efd_telemetry::catalog::small_catalog()).render();
        assert!(s.contains("nr_mapped_vmstat"), "{s}");
        assert!(s.contains("sp X, bt X"), "{s}");
        assert!(s.contains("11000.0"), "{s}");
        assert!(s.contains("[60:120]"), "{s}");
    }

    #[test]
    fn learn_from_observation() {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        let obs = LabeledObservation {
            label: lab("cg", "Y"),
            query: query([6800.0, 6810.0, 6790.0, 6805.0]),
        };
        d.learn(&obs);
        assert_eq!(d.len(), 4);
        let r = d.recognize(&query([6802.0, 6798.0, 6812.0, 6801.0]));
        assert_eq!(r.verdict, Verdict::Recognized("cg".into()));
    }
}
