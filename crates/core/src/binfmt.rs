//! EFDB — the versioned binary on-disk dictionary format.
//!
//! [`crate::serialize`]'s JSON dumps are the inspectable, mergeable form;
//! EFDB is the *operational* form: a compact little-endian binary that a
//! serving process can load in milliseconds, so cold-starts and mid-stream
//! snapshot swaps never pay a text parse. The byte-level layout — offsets,
//! widths, endianness, the version/compatibility policy, and a worked hex
//! dump — is specified in `docs/FORMAT.md`; this module is the reference
//! implementation.
//!
//! Shape of a file (all integers little-endian):
//!
//! ```text
//! magic "EFDB" | header (version, depth, catalog digest, section offsets)
//! strings      sorted, deduplicated, length-prefixed UTF-8
//! metrics      string ids of every metric name used by the keys
//! apps         string ids of application names, in tie-break order
//! labels       (app id, input string id) pairs, in LabelId order
//! keys         fixed 26-byte records, sorted, each → postings offset
//! postings     label-id lists, one per key
//! checksum     FxHash over everything above
//! ```
//!
//! Like the JSON dump, keys reference metrics **by name** (via the string
//! table), so files are portable across catalog rebuilds; the header's
//! catalog digest only records which catalog the writer saw
//! ([`Efdb::matches_catalog`] tells a loader whether name resolution is
//! guaranteed to be the identity).
//!
//! [`write()`] produces the canonical encoding: one byte stream per
//! dictionary *content*, independent of learn order of the keys (label
//! intern order — the tie-break order — is preserved, exactly like the
//! JSON dump's `label_order`). Reading is split in two: [`check`]
//! validates everything — magic, version, layout, checksum, string
//! sort, every id, key ordering, postings bounds — exactly once and
//! returns a borrowing [`EfdbView`] whose section views
//! ([`KeyRecords`], [`Postings`], [`Strings`]) are typed zero-copy
//! accessors over the raw bytes; [`read`] is the owned decode on top of
//! it, returning [`Efdb`] sections that thaw into [`DictionaryParts`].
//! Zero-copy serving (`efd_serve::EfdbSnapshot`) keeps the checked
//! buffer and answers queries straight from the view.

use std::fmt;

use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};

use crate::dictionary::{AppNameId, DictionaryParts, EfdDictionary, LabelId};
use crate::fingerprint::Fingerprint;
use crate::rounding::RoundingDepth;

/// The four magic bytes every EFDB file starts with.
pub const MAGIC: [u8; 4] = *b"EFDB";

/// Format major version this module writes. Readers reject any other
/// major: same-major files are guaranteed decodable, a different major
/// means the layout changed incompatibly.
pub const VERSION_MAJOR: u16 = 1;

/// Format minor version this module writes. Minor bumps are additive
/// (they may assign meaning to reserved bytes); readers accept files with
/// an *older or equal* minor and reject newer ones, whose extensions they
/// would silently ignore.
pub const VERSION_MINOR: u16 = 0;

/// Size of the fixed header (magic through section-offset table).
pub const HEADER_LEN: usize = 48;

/// Size of one fixed key record in the keys section.
pub const KEY_RECORD_LEN: usize = 26;

/// Errors decoding an EFDB byte stream.
///
/// Marked `#[non_exhaustive]`: future format validations may add variants
/// without a semver break, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BinFormatError {
    /// The stream ends before `what` could be read in full.
    Truncated {
        /// Which field or section the reader was decoding.
        what: &'static str,
        /// Bytes required to decode it.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The file's version is outside what this reader accepts
    /// (major ≠ [`VERSION_MAJOR`], or minor > [`VERSION_MINOR`]).
    UnsupportedVersion {
        /// Major version stored in the file.
        major: u16,
        /// Minor version stored in the file.
        minor: u16,
    },
    /// The trailing checksum does not match the preceding bytes.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
    /// The header's rounding depth is outside `1..=17`.
    InvalidDepth(u8),
    /// A string-table entry is not valid UTF-8.
    InvalidUtf8 {
        /// Index of the offending string.
        index: usize,
    },
    /// An id field points past the table it indexes.
    IdOutOfRange {
        /// Which id field.
        what: &'static str,
        /// The out-of-range id.
        id: u32,
        /// Number of entries in the indexed table.
        limit: u32,
    },
    /// The string table is not strictly ascending by UTF-8 bytes — the
    /// canonical sorted/deduplicated form every writer must produce.
    /// Validated on read since a hand-edited or adversarial table would
    /// otherwise silently break the id assignments recorded by the
    /// metrics/apps/labels sections.
    UnsortedStrings {
        /// Index of the first string that is ≤ its predecessor.
        index: usize,
    },
    /// The keys section is not strictly ascending (which also guarantees
    /// key uniqueness).
    UnsortedKeys {
        /// Index of the first key that is ≤ its predecessor.
        index: usize,
    },
    /// A key's interval is empty (`end <= start`).
    EmptyInterval {
        /// Interval start second.
        start: u32,
        /// Interval end second.
        end: u32,
    },
    /// Internally inconsistent layout (section offsets out of order, a
    /// section not ending where the next begins, non-finite mean bits, …).
    Layout {
        /// What was inconsistent.
        what: &'static str,
    },
    /// Resolving against a catalog: a stored metric name is absent.
    UnknownMetric(String),
}

impl fmt::Display for BinFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinFormatError::Truncated { what, need, have } => {
                write!(f, "truncated while reading {what}: need {need} bytes, have {have}")
            }
            BinFormatError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected \"EFDB\")")
            }
            BinFormatError::UnsupportedVersion { major, minor } => write!(
                f,
                "unsupported format version {major}.{minor} \
                 (this reader accepts {VERSION_MAJOR}.0 ..= {VERSION_MAJOR}.{VERSION_MINOR})"
            ),
            BinFormatError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            BinFormatError::InvalidDepth(d) => write!(f, "rounding depth {d} outside 1..=17"),
            BinFormatError::InvalidUtf8 { index } => {
                write!(f, "string #{index} is not valid UTF-8")
            }
            BinFormatError::IdOutOfRange { what, id, limit } => {
                write!(f, "{what} id {id} out of range (table has {limit} entries)")
            }
            BinFormatError::UnsortedStrings { index } => {
                write!(f, "string #{index} is not strictly greater than its predecessor")
            }
            BinFormatError::UnsortedKeys { index } => {
                write!(f, "key #{index} is not strictly greater than its predecessor")
            }
            BinFormatError::EmptyInterval { start, end } => {
                write!(f, "empty interval [{start}:{end}] in key record")
            }
            BinFormatError::Layout { what } => write!(f, "inconsistent layout: {what}"),
            BinFormatError::UnknownMetric(m) => write!(f, "metric {m:?} not in catalog"),
        }
    }
}

impl std::error::Error for BinFormatError {}

/// Digest of a catalog's metric-name list (order-sensitive FxHash).
///
/// Written into every EFDB header; a loader whose catalog has the same
/// digest knows metric-name resolution is the identity mapping the writer
/// used. A different digest is *not* an error — files reference metrics by
/// name precisely so they survive catalog rebuilds — it just means
/// resolution must be checked name by name (which [`Efdb::into_parts`]
/// does anyway).
pub fn catalog_digest(catalog: &MetricCatalog) -> u64 {
    use std::hash::Hasher;
    let mut h = efd_util::FxHasher::default();
    h.write_u32(catalog.len() as u32);
    for id in catalog.ids() {
        let name = catalog.name(id).as_bytes();
        h.write_u32(name.len() as u32);
        h.write(name);
    }
    h.finish()
}

/// One decoded key record: a fingerprint with its metric still in
/// name-table form, plus the label ids stored under it.
#[derive(Debug, Clone, PartialEq)]
pub struct EfdbEntry {
    /// Index into [`Efdb::metrics`].
    pub metric: u32,
    /// Node id.
    pub node: NodeId,
    /// Time window of the fingerprint.
    pub interval: Interval,
    /// Rounded-mean bits (normalized: `-0.0` never appears).
    pub mean_bits: u64,
    /// Labels stored under the key, in stored order.
    pub labels: Vec<LabelId>,
}

impl EfdbEntry {
    /// The rounded mean as a float.
    #[inline]
    pub fn mean(&self) -> f64 {
        f64::from_bits(self.mean_bits)
    }
}

/// A fully validated, decoded EFDB file.
///
/// Produced by [`read`]; every id is already bounds-checked, keys are
/// strictly ascending, and the checksum verified — consumers can index
/// the tables without further validation. Thaw with [`Efdb::into_parts`] /
/// [`Efdb::to_dictionary`], or hand the decoded sections straight to the
/// serving layer (`efd_serve::Snapshot::from_efdb`) to skip the
/// intermediate [`EfdDictionary`] entirely.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a decoded Efdb holds the validated sections; thaw or serve them"]
pub struct Efdb {
    depth: RoundingDepth,
    catalog_digest: u64,
    metrics: Vec<String>,
    apps: Vec<String>,
    labels: Vec<AppLabel>,
    label_app: Vec<AppNameId>,
    entries: Vec<EfdbEntry>,
}

impl Efdb {
    /// Rounding depth the dictionary was built with.
    pub fn depth(&self) -> RoundingDepth {
        self.depth
    }

    /// The writer's catalog digest (see [`catalog_digest`]).
    pub fn stored_catalog_digest(&self) -> u64 {
        self.catalog_digest
    }

    /// Whether `catalog` has the same digest the writer recorded —
    /// i.e. metric-name resolution is guaranteed to reproduce the
    /// writer's ids.
    pub fn matches_catalog(&self, catalog: &MetricCatalog) -> bool {
        self.catalog_digest == catalog_digest(catalog)
    }

    /// Metric names referenced by the keys, in key-record id order.
    pub fn metrics(&self) -> &[String] {
        &self.metrics
    }

    /// Application names in tie-break (first-learned) order.
    pub fn apps(&self) -> &[String] {
        &self.apps
    }

    /// Labels in [`LabelId`] order — the dictionary's intern order.
    pub fn labels(&self) -> &[AppLabel] {
        &self.labels
    }

    /// `labels[i]`'s application is `apps[label_app[i].index()]`.
    pub fn label_app(&self) -> &[AppNameId] {
        &self.label_app
    }

    /// Decoded key records, sorted by
    /// `(metric, node, interval, mean_bits)`.
    pub fn entries(&self) -> &[EfdbEntry] {
        &self.entries
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file holds no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolve every stored metric name against `catalog`, in
    /// [`Efdb::metrics`] order.
    pub fn resolve_metrics(&self, catalog: &MetricCatalog) -> Result<Vec<MetricId>, BinFormatError> {
        self.metrics
            .iter()
            .map(|name| {
                catalog
                    .id(name)
                    .ok_or_else(|| BinFormatError::UnknownMetric(name.clone()))
            })
            .collect()
    }

    /// Thaw into [`DictionaryParts`] (metric names resolved via
    /// `catalog`). Entries come out in the file's sorted-key order; label
    /// intern order — the tie-break order — is the writer's.
    pub fn into_parts(self, catalog: &MetricCatalog) -> Result<DictionaryParts, BinFormatError> {
        let metric_ids = self.resolve_metrics(catalog)?;
        let entries = self
            .entries
            .into_iter()
            .map(|e| {
                let fp = Fingerprint::from_rounded(
                    metric_ids[e.metric as usize],
                    e.node,
                    e.interval,
                    f64::from_bits(e.mean_bits),
                );
                (fp, e.labels)
            })
            .collect();
        Ok(DictionaryParts {
            depth: self.depth,
            entries,
            labels: self.labels,
            apps: self.apps,
            label_app: self.label_app,
        })
    }

    /// Thaw into a live [`EfdDictionary`] ready to keep learning.
    pub fn to_dictionary(&self, catalog: &MetricCatalog) -> Result<EfdDictionary, BinFormatError> {
        Ok(EfdDictionary::from_parts(self.clone().into_parts(catalog)?))
    }
}

/// Encode [`DictionaryParts`] as EFDB bytes (metric ids resolved to names
/// via `catalog`).
///
/// The encoding is **canonical**: parts holding the same dictionary
/// content (same keys, same label lists, same label intern order)
/// serialize to identical bytes regardless of the order keys were
/// learned or listed in — duplicate keys merge and key records sort, just
/// like [`EfdDictionary::from_parts`] followed by a deterministic dump.
///
/// ```
/// use efd_core::{binfmt, EfdDictionary, RoundingDepth};
/// use efd_telemetry::catalog::small_catalog;
/// use efd_telemetry::{AppLabel, Interval, NodeId};
///
/// let catalog = small_catalog();
/// let metric = catalog.id("nr_mapped_vmstat").unwrap();
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// for (node, mean) in [6020.0, 6019.0].into_iter().enumerate() {
///     dict.insert_raw(metric, NodeId(node as u16), Interval::PAPER_DEFAULT,
///                     mean, &AppLabel::new("ft", "X"));
/// }
///
/// let bytes = binfmt::write(&dict.to_parts(), &catalog);
/// assert_eq!(&bytes[..4], b"EFDB");
/// // Canonical: re-encoding the decoded file reproduces the same bytes.
/// let back = binfmt::read(&bytes).unwrap().into_parts(&catalog).unwrap();
/// assert_eq!(binfmt::write(&back, &catalog), bytes);
/// ```
///
/// # Panics
///
/// Panics if the parts are internally inconsistent (see
/// [`EfdDictionary::from_parts`]) or reference a [`MetricId`] not minted
/// by `catalog`. Parts produced by [`EfdDictionary::into_parts`] with the
/// catalog the dictionary was built against are always valid.
pub fn write(parts: &DictionaryParts, catalog: &MetricCatalog) -> Vec<u8> {
    // Canonicalize through the core dictionary: duplicate keys merge,
    // label lists dedup, and the documented consistency panics originate
    // in one shared place.
    let parts = EfdDictionary::from_parts(parts.clone()).into_parts();

    // Gather every string the file needs: metric names, app names, label
    // input sizes. Sorted + deduplicated = canonical string table.
    let metric_names: Vec<&str> = {
        let mut seen: Vec<&str> = parts
            .entries
            .iter()
            .map(|(fp, _)| catalog.name(fp.metric))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    };
    let mut strings: Vec<&str> = metric_names
        .iter()
        .copied()
        .chain(parts.apps.iter().map(String::as_str))
        .chain(parts.labels.iter().map(|l| l.input.as_str()))
        .collect();
    strings.sort_unstable();
    strings.dedup();
    let string_id = |s: &str| -> u32 {
        strings.binary_search(&s).expect("string interned") as u32
    };
    let metric_idx: efd_util::FxHashMap<MetricId, u32> = parts
        .entries
        .iter()
        .map(|(fp, _)| fp.metric)
        .map(|m| {
            let pos = metric_names
                .binary_search(&catalog.name(m))
                .expect("metric name interned") as u32;
            (m, pos)
        })
        .collect();

    // Key records in canonical sort order: (metric, node, start, end,
    // mean bits) plus the postings list to lay out.
    type KeyRecord<'a> = (u32, u16, u32, u32, u64, &'a [LabelId]);
    let mut keys: Vec<KeyRecord<'_>> = parts
        .entries
        .iter()
        .map(|(fp, ids)| {
            (
                metric_idx[&fp.metric],
                fp.node.0,
                fp.interval.start,
                fp.interval.end,
                fp.mean().to_bits(),
                ids.as_slice(),
            )
        })
        .collect();
    keys.sort_unstable_by_key(|&(m, n, s, e, b, _)| (m, n, s, e, b));

    // Serialize sections into a single buffer, recording offsets.
    let mut out = Vec::with_capacity(HEADER_LEN + keys.len() * (KEY_RECORD_LEN + 8));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
    out.extend_from_slice(&VERSION_MINOR.to_le_bytes());
    out.push(parts.depth.get());
    out.extend_from_slice(&[0u8; 3]); // reserved
    out.extend_from_slice(&catalog_digest(catalog).to_le_bytes());
    let offset_table_at = out.len();
    out.extend_from_slice(&[0u8; 28]); // 7 × u32 section offsets, patched below
    debug_assert_eq!(out.len(), HEADER_LEN);

    let mut offsets = [0u32; 7];

    // strings
    offsets[0] = out.len() as u32;
    out.extend_from_slice(&(strings.len() as u32).to_le_bytes());
    for s in &strings {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }

    // metrics
    offsets[1] = out.len() as u32;
    out.extend_from_slice(&(metric_names.len() as u32).to_le_bytes());
    for name in &metric_names {
        out.extend_from_slice(&string_id(name).to_le_bytes());
    }

    // apps (tie-break order, NOT sorted)
    offsets[2] = out.len() as u32;
    out.extend_from_slice(&(parts.apps.len() as u32).to_le_bytes());
    for app in &parts.apps {
        out.extend_from_slice(&string_id(app).to_le_bytes());
    }

    // labels (LabelId order)
    offsets[3] = out.len() as u32;
    out.extend_from_slice(&(parts.labels.len() as u32).to_le_bytes());
    for (label, app) in parts.labels.iter().zip(&parts.label_app) {
        out.extend_from_slice(&(app.index() as u32).to_le_bytes());
        out.extend_from_slice(&string_id(&label.input).to_le_bytes());
    }

    // keys + postings: lay postings out in key order so the blob is
    // deterministic and sequential to read.
    offsets[4] = out.len() as u32;
    out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
    let mut postings: Vec<u8> = Vec::new();
    for &(metric, node, start, end, mean_bits, ids) in &keys {
        out.extend_from_slice(&metric.to_le_bytes());
        out.extend_from_slice(&node.to_le_bytes());
        out.extend_from_slice(&start.to_le_bytes());
        out.extend_from_slice(&end.to_le_bytes());
        out.extend_from_slice(&mean_bits.to_le_bytes());
        out.extend_from_slice(&(postings.len() as u32).to_le_bytes());
        postings.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for id in ids {
            postings.extend_from_slice(&(id.index() as u32).to_le_bytes());
        }
    }

    offsets[5] = out.len() as u32;
    out.extend_from_slice(&(postings.len() as u32).to_le_bytes());
    out.extend_from_slice(&postings);

    // checksum trailer
    assert!(
        out.len() <= u32::MAX as usize,
        "EFDB encoding exceeds the format's 4 GiB u32-offset limit"
    );
    offsets[6] = out.len() as u32;
    for (i, off) in offsets.iter().enumerate() {
        out[offset_table_at + 4 * i..offset_table_at + 4 * (i + 1)]
            .copy_from_slice(&off.to_le_bytes());
    }
    let sum = efd_util::hash::hash_bytes(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Convenience: encode a live dictionary (clones its content into parts).
pub fn write_dictionary(dict: &EfdDictionary, catalog: &MetricCatalog) -> Vec<u8> {
    write(&dict.to_parts(), catalog)
}

/// Bounds-checked little-endian cursor over the input bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], BinFormatError> {
        let end = self.pos.checked_add(n).ok_or(BinFormatError::Layout {
            what: "offset arithmetic overflow",
        })?;
        if end > self.bytes.len() {
            return Err(BinFormatError::Truncated {
                what,
                need: end - self.pos,
                have: self.bytes.len() - self.pos,
            });
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, BinFormatError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, BinFormatError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, BinFormatError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

fn check_id(what: &'static str, id: u32, limit: usize) -> Result<(), BinFormatError> {
    if (id as usize) < limit {
        Ok(())
    } else {
        Err(BinFormatError::IdOutOfRange {
            what,
            id,
            limit: limit as u32,
        })
    }
}

// ---------------------------------------------------------------------
// Checked views: validate once, borrow forever
// ---------------------------------------------------------------------

/// A fully validated EFDB buffer, borrowed in place.
///
/// Produced by [`check`]: every invariant [`read`] enforces has already
/// been verified — magic, version, layout, checksum, string-table sort,
/// id bounds, key ordering, postings bounds — so the accessors below
/// expose the raw sections with **no further validation and no
/// allocation**. The view is `Copy`; as long as the backing bytes stay
/// alive it can be borrowed forever, which is exactly the substrate the
/// serving layer's zero-copy `EfdbSnapshot` answers queries from.
#[derive(Debug, Clone, Copy)]
#[must_use = "a checked view borrows the validated sections; decode or serve them"]
pub struct EfdbView<'a> {
    bytes: &'a [u8],
    depth: RoundingDepth,
    catalog_digest: u64,
    /// strings, metrics, apps, labels, keys — entry counts per section.
    counts: [u32; 5],
    offsets: [u32; 7],
}

impl<'a> EfdbView<'a> {
    /// Rounding depth the dictionary was built with.
    pub fn depth(&self) -> RoundingDepth {
        self.depth
    }

    /// The writer's catalog digest (see [`catalog_digest`]).
    pub fn stored_catalog_digest(&self) -> u64 {
        self.catalog_digest
    }

    /// Whether `catalog` has the digest the writer recorded — i.e.
    /// metric-name resolution reproduces the writer's ids.
    pub fn matches_catalog(&self, catalog: &MetricCatalog) -> bool {
        self.catalog_digest == catalog_digest(catalog)
    }

    /// Number of key records.
    pub fn len(&self) -> usize {
        self.counts[4] as usize
    }

    /// Whether the file holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload of section `idx` (the bytes after its count prefix).
    fn section_payload(&self, idx: usize) -> &'a [u8] {
        let start = self.offsets[idx] as usize + 4;
        let end = self.offsets[idx + 1] as usize;
        &self.bytes[start..end]
    }

    /// The string table in stored (sorted, deduplicated) order.
    pub fn strings(&self) -> Strings<'a> {
        Strings {
            rest: self.section_payload(0),
            remaining: self.counts[0],
        }
    }

    /// String ids of the metric names, in key-record metric-index order.
    pub fn metric_string_ids(&self) -> impl Iterator<Item = u32> + 'a {
        u32s(self.section_payload(1))
    }

    /// String ids of the application names, in tie-break order.
    pub fn app_string_ids(&self) -> impl Iterator<Item = u32> + 'a {
        u32s(self.section_payload(2))
    }

    /// Label records as `(app id, input string id)` pairs, in
    /// [`LabelId`] order.
    pub fn label_records(&self) -> impl Iterator<Item = (u32, u32)> + 'a {
        let payload = self.section_payload(3);
        (0..payload.len() / 8).map(move |i| {
            let at = i * 8;
            (le_u32(payload, at), le_u32(payload, at + 4))
        })
    }

    /// Typed view over the sorted fixed-width key records.
    pub fn keys(&self) -> KeyRecords<'a> {
        KeyRecords::over(&self.bytes[self.key_records_range()])
    }

    /// In-place view over the postings blob.
    pub fn postings(&self) -> Postings<'a> {
        Postings::over(&self.bytes[self.postings_blob_range()])
    }

    /// Byte range of the raw key-record array within the checked buffer
    /// (for callers that keep the buffer and rebind with
    /// [`KeyRecords::over`]).
    pub fn key_records_range(&self) -> std::ops::Range<usize> {
        self.offsets[4] as usize + 4..self.offsets[5] as usize
    }

    /// Byte range of the postings blob within the checked buffer (for
    /// callers that keep the buffer and rebind with [`Postings::over`]).
    pub fn postings_blob_range(&self) -> std::ops::Range<usize> {
        self.offsets[5] as usize + 4..self.offsets[6] as usize
    }

    /// Decode the owned app/label tables (apps, labels, label→app map).
    fn decode_label_tables(
        &self,
        strings: &[&'a str],
    ) -> (Vec<String>, Vec<AppLabel>, Vec<AppNameId>) {
        let apps: Vec<String> = self
            .app_string_ids()
            .map(|sid| strings[sid as usize].to_string())
            .collect();
        let n = self.counts[3] as usize;
        let mut labels = Vec::with_capacity(n);
        let mut label_app = Vec::with_capacity(n);
        for (app, input) in self.label_records() {
            labels.push(AppLabel::new(&apps[app as usize], strings[input as usize]));
            label_app.push(AppNameId::from_index(app as usize));
        }
        (apps, labels, label_app)
    }

    /// Thaw the viewed file into [`DictionaryParts`] directly — one
    /// materialization, no intermediate [`Efdb`] (metric names resolved
    /// via `catalog`).
    pub fn to_parts(&self, catalog: &MetricCatalog) -> Result<DictionaryParts, BinFormatError> {
        let strings: Vec<&str> = self.strings().collect();
        let metric_ids: Vec<MetricId> = self
            .metric_string_ids()
            .map(|sid| {
                let name = strings[sid as usize];
                catalog
                    .id(name)
                    .ok_or_else(|| BinFormatError::UnknownMetric(name.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let (apps, labels, label_app) = self.decode_label_tables(&strings);
        let postings = self.postings();
        let entries = self
            .keys()
            .iter()
            .map(|r| {
                let fp = Fingerprint::from_rounded(
                    metric_ids[r.metric as usize],
                    r.node,
                    r.interval,
                    f64::from_bits(r.mean_bits),
                );
                let ids = postings
                    .label_ids(r.postings_off)
                    .map(|id| LabelId::from_index(id as usize))
                    .collect();
                (fp, ids)
            })
            .collect();
        Ok(DictionaryParts {
            depth: self.depth,
            entries,
            labels,
            apps,
            label_app,
        })
    }
}

/// Little-endian `u32` at byte offset `at` (caller guarantees bounds —
/// all section payloads are length-validated by [`check`]).
#[inline]
fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

/// Iterator over a section payload of packed little-endian `u32`s.
fn u32s(payload: &[u8]) -> impl Iterator<Item = u32> + '_ {
    payload
        .chunks_exact(4)
        .map(|raw| u32::from_le_bytes(raw.try_into().unwrap()))
}

/// Iterator over a checked string table, yielding each entry in stored
/// (sorted) order without copying.
#[derive(Debug, Clone)]
#[must_use = "iterators are lazy"]
pub struct Strings<'a> {
    rest: &'a [u8],
    remaining: u32,
}

impl<'a> Iterator for Strings<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let len = le_u32(self.rest, 0) as usize;
        let raw = &self.rest[4..4 + len];
        self.rest = &self.rest[4 + len..];
        // UTF-8 was validated by `check`.
        Some(std::str::from_utf8(raw).unwrap_or(""))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// One decoded fixed-width key record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRecord {
    /// Index into the file's metrics section (file-local, not a
    /// catalog [`MetricId`]).
    pub metric: u32,
    /// Node id.
    pub node: NodeId,
    /// Time window of the fingerprint.
    pub interval: Interval,
    /// Rounded-mean bits (normalized: `-0.0` never appears).
    pub mean_bits: u64,
    /// Byte offset of this key's posting list in the postings blob.
    pub postings_off: u32,
}

/// Typed, random-access view over raw 26-byte key records: length,
/// indexed decode, and the binary-search/prefix-fanout lookups zero-copy
/// serving runs per query point. No allocation; every access is
/// bounds-checked slicing.
///
/// Normally obtained from [`EfdbView::keys`]. [`KeyRecords::over`] can
/// rebind a view to key-record bytes a caller kept from a checked
/// buffer; the search methods assume the records are sorted strictly
/// ascending by `(metric, node, start, end, mean_bits)` — the invariant
/// [`check`] enforces — and return arbitrary (but memory-safe) results
/// over bytes that never passed validation.
#[derive(Debug, Clone, Copy)]
#[must_use = "a key-record view only reads; call its accessors"]
pub struct KeyRecords<'a> {
    records: &'a [u8],
}

impl<'a> KeyRecords<'a> {
    /// View `records` (a whole number of [`KEY_RECORD_LEN`]-byte
    /// entries; a ragged tail is ignored) as key records.
    pub fn over(records: &'a [u8]) -> KeyRecords<'a> {
        let whole = records.len() - records.len() % KEY_RECORD_LEN;
        KeyRecords {
            records: &records[..whole],
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len() / KEY_RECORD_LEN
    }

    /// Whether there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The raw record bytes this view reads.
    pub fn bytes(&self) -> &'a [u8] {
        self.records
    }

    /// Sort-order fields of record `i` (caller guarantees `i < len`).
    #[inline]
    fn ord_at(&self, i: usize) -> (u32, u16, u32, u32, u64) {
        let r = &self.records[i * KEY_RECORD_LEN..(i + 1) * KEY_RECORD_LEN];
        (
            le_u32(r, 0),
            u16::from_le_bytes(r[4..6].try_into().unwrap()),
            le_u32(r, 6),
            le_u32(r, 10),
            u64::from_le_bytes(r[14..22].try_into().unwrap()),
        )
    }

    /// Decode record `i`.
    pub fn get(&self, i: usize) -> Option<KeyRecord> {
        if i >= self.len() {
            return None;
        }
        let (metric, node, start, end, mean_bits) = self.ord_at(i);
        let postings_off = le_u32(self.records, i * KEY_RECORD_LEN + 22);
        Some(KeyRecord {
            metric,
            node: NodeId(node),
            interval: Interval { start, end },
            mean_bits,
            postings_off,
        })
    }

    /// Iterate every record in stored (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = KeyRecord> + 'a {
        let v = *self;
        (0..v.len()).map(move |i| v.get(i).expect("index in range"))
    }

    /// First index whose sort key fails `keep` (a partition point over
    /// the sorted records).
    fn partition(&self, keep: impl Fn(&(u32, u16, u32, u32, u64)) -> bool) -> usize {
        let (mut lo, mut hi) = (0, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if keep(&self.ord_at(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Record-index range holding file-local metric index `metric` — the
    /// prefix fan-out: resolve a query point's metric once, then search
    /// only its contiguous span.
    pub fn metric_range(&self, metric: u32) -> std::ops::Range<usize> {
        self.partition(|ord| ord.0 < metric)..self.partition(|ord| ord.0 <= metric)
    }

    /// Binary-search the whole table for an exact key.
    pub fn find(
        &self,
        metric: u32,
        node: NodeId,
        interval: Interval,
        mean_bits: u64,
    ) -> Option<KeyRecord> {
        self.find_in(0..self.len(), metric, node, interval, mean_bits)
    }

    /// Binary-search for an exact key within `range` (typically a
    /// [`KeyRecords::metric_range`]).
    pub fn find_in(
        &self,
        range: std::ops::Range<usize>,
        metric: u32,
        node: NodeId,
        interval: Interval,
        mean_bits: u64,
    ) -> Option<KeyRecord> {
        let target = (metric, node.0, interval.start, interval.end, mean_bits);
        let (mut lo, mut hi) = (range.start.min(self.len()), range.end.min(self.len()));
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.ord_at(mid).cmp(&target) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return self.get(mid),
            }
        }
        None
    }
}

/// In-place view over a postings blob: per-key label-id lists decoded on
/// the fly, no allocation.
///
/// Normally obtained from [`EfdbView::postings`]; [`Postings::over`] can
/// rebind to blob bytes kept from a checked buffer. Every access is
/// bounds-checked (counts clamp to the blob), so unvalidated bytes can
/// only yield short or empty lists, never unsafety.
#[derive(Debug, Clone, Copy)]
#[must_use = "a postings view only reads; call its accessors"]
pub struct Postings<'a> {
    blob: &'a [u8],
}

impl<'a> Postings<'a> {
    /// View `blob` as a postings blob.
    pub fn over(blob: &'a [u8]) -> Postings<'a> {
        Postings { blob }
    }

    /// The raw blob bytes this view reads.
    pub fn bytes(&self) -> &'a [u8] {
        self.blob
    }

    /// The count-prefixed id array at `off`, as `(count, id bytes)`.
    #[inline]
    fn list_at(&self, off: u32) -> (usize, &'a [u8]) {
        let at = (off as usize).min(self.blob.len());
        let rest = &self.blob[at..];
        if rest.len() < 4 {
            return (0, &[]);
        }
        let ids = &rest[4..];
        ((le_u32(rest, 0) as usize).min(ids.len() / 4), ids)
    }

    /// Iterate the label ids stored at `off` (a
    /// [`KeyRecord::postings_off`]).
    pub fn label_ids(&self, off: u32) -> impl Iterator<Item = u32> + 'a {
        let (count, ids) = self.list_at(off);
        u32s(ids).take(count)
    }

    /// Chunked postings walk: decode the label ids at `off` in small
    /// fixed batches into a stack buffer, then hand each batch to `f` —
    /// the cache-friendly accumulation shape of the hot vote loop
    /// (decode touches the blob, votes touch the counters, never
    /// interleaved per id).
    pub fn for_each_label(&self, off: u32, mut f: impl FnMut(u32)) {
        let (count, ids) = self.list_at(off);
        let mut chunk = [0u32; 16];
        let mut done = 0;
        while done < count {
            let n = (count - done).min(chunk.len());
            for (slot, raw) in chunk
                .iter_mut()
                .zip(ids[done * 4..(done + n) * 4].chunks_exact(4))
            {
                *slot = u32::from_le_bytes(raw.try_into().unwrap());
            }
            for &id in &chunk[..n] {
                f(id);
            }
            done += n;
        }
    }
}

/// Validate an EFDB byte stream once and return a borrowing
/// [`EfdbView`] over its sections — the check-once / borrow-forever
/// half of [`read`].
///
/// Validation order: magic → version → header layout → checksum → depth →
/// sections (string table UTF-8 **and lexicographic sort**, ids in
/// bounds, key ordering, postings bounds). The first failure is returned
/// as a structured [`BinFormatError`]; a returned view is internally
/// consistent by construction and allocates nothing.
///
/// ```
/// use efd_core::{binfmt, EfdDictionary, RoundingDepth};
/// use efd_telemetry::catalog::small_catalog;
/// use efd_telemetry::{AppLabel, Interval, NodeId};
///
/// let catalog = small_catalog();
/// let metric = catalog.id("nr_mapped_vmstat").unwrap();
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// dict.insert_raw(metric, NodeId(0), Interval::PAPER_DEFAULT, 6020.0,
///                 &AppLabel::new("ft", "X"));
/// let bytes = binfmt::write(&dict.to_parts(), &catalog);
///
/// // Check once ...
/// let view = binfmt::check(&bytes).unwrap();
/// assert_eq!(view.len(), 1);
/// assert!(view.matches_catalog(&catalog));
/// // ... then borrow the sections in place, no allocation:
/// let keys = view.keys();
/// let rec = keys.get(0).unwrap();
/// let labels: Vec<u32> = view.postings().label_ids(rec.postings_off).collect();
/// assert_eq!(labels, [0]);
/// ```
pub fn check(bytes: &[u8]) -> Result<EfdbView<'_>, BinFormatError> {
    let mut c = Cursor { bytes, pos: 0 };

    let magic = c.take(4, "magic")?;
    if magic != MAGIC {
        return Err(BinFormatError::BadMagic {
            found: magic.try_into().unwrap(),
        });
    }
    let major = c.u16("version_major")?;
    let minor = c.u16("version_minor")?;
    if major != VERSION_MAJOR || minor > VERSION_MINOR {
        return Err(BinFormatError::UnsupportedVersion { major, minor });
    }
    let depth_byte = c.take(1, "depth")?[0];
    c.take(3, "reserved")?; // readers ignore reserved bytes (minor-version extension space)
    let digest = c.u64("catalog_digest")?;
    let mut offsets = [0u32; 7];
    for (i, off) in offsets.iter_mut().enumerate() {
        *off = c.u32(["strings_off", "metrics_off", "apps_off", "labels_off",
                      "keys_off", "postings_off", "checksum_off"][i])?;
    }

    // Layout sanity before touching section contents: offsets ascend,
    // the first section starts right after the header, and the checksum
    // trailer is the last 8 bytes of the stream.
    if offsets[0] as usize != HEADER_LEN {
        return Err(BinFormatError::Layout {
            what: "strings section does not start at the header boundary",
        });
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(BinFormatError::Layout {
            what: "section offsets are not ascending",
        });
    }
    let checksum_off = offsets[6] as usize;
    if checksum_off + 8 > bytes.len() {
        return Err(BinFormatError::Truncated {
            what: "checksum trailer",
            need: checksum_off + 8,
            have: bytes.len(),
        });
    }
    if checksum_off + 8 != bytes.len() {
        return Err(BinFormatError::Layout {
            what: "bytes after the checksum trailer",
        });
    }
    let stored = u64::from_le_bytes(bytes[checksum_off..checksum_off + 8].try_into().unwrap());
    let computed = efd_util::hash::hash_bytes(&bytes[..checksum_off]);
    if stored != computed {
        return Err(BinFormatError::ChecksumMismatch { stored, computed });
    }
    let depth =
        RoundingDepth::try_new(depth_byte).ok_or(BinFormatError::InvalidDepth(depth_byte))?;

    let section = |idx: usize, c: &mut Cursor<'_>| -> Result<(), BinFormatError> {
        if c.pos != offsets[idx] as usize {
            return Err(BinFormatError::Layout {
                what: "section does not end at the next section's offset",
            });
        }
        Ok(())
    };

    // strings: UTF-8, and strictly ascending by UTF-8 bytes (the
    // canonical sorted/deduplicated form).
    section(0, &mut c)?;
    let n_strings = c.u32("string count")?;
    let mut prev_string: Option<&[u8]> = None;
    for i in 0..n_strings as usize {
        let len = c.u32("string length")? as usize;
        let raw = c.take(len, "string bytes")?;
        std::str::from_utf8(raw).map_err(|_| BinFormatError::InvalidUtf8 { index: i })?;
        if prev_string.is_some_and(|p| p >= raw) {
            return Err(BinFormatError::UnsortedStrings { index: i });
        }
        prev_string = Some(raw);
    }

    // metrics
    section(1, &mut c)?;
    let n_metrics = c.u32("metric count")?;
    for _ in 0..n_metrics {
        let sid = c.u32("metric string id")?;
        check_id("metric string", sid, n_strings as usize)?;
    }

    // apps
    section(2, &mut c)?;
    let n_apps = c.u32("app count")?;
    for _ in 0..n_apps {
        let sid = c.u32("app string id")?;
        check_id("app string", sid, n_strings as usize)?;
    }

    // labels
    section(3, &mut c)?;
    let n_labels = c.u32("label count")?;
    for _ in 0..n_labels {
        let app = c.u32("label app id")?;
        check_id("label app", app, n_apps as usize)?;
        let input = c.u32("label input string id")?;
        check_id("label input string", input, n_strings as usize)?;
    }

    // keys (fixed records, strictly ascending)
    section(4, &mut c)?;
    let n_keys = c.u32("key count")?;
    let keys_payload_at = c.pos;
    let mut prev: Option<(u32, u16, u32, u32, u64)> = None;
    for i in 0..n_keys as usize {
        let metric = c.u32("key metric id")?;
        check_id("key metric", metric, n_metrics as usize)?;
        let node = c.u16("key node")?;
        let start = c.u32("key interval start")?;
        let end = c.u32("key interval end")?;
        if end <= start {
            return Err(BinFormatError::EmptyInterval { start, end });
        }
        let mean_bits = c.u64("key mean bits")?;
        if !f64::from_bits(mean_bits).is_finite() {
            return Err(BinFormatError::Layout {
                what: "non-finite mean bits in key record",
            });
        }
        let ord = (metric, node, start, end, mean_bits);
        if prev.is_some_and(|p| p >= ord) {
            return Err(BinFormatError::UnsortedKeys { index: i });
        }
        prev = Some(ord);
        c.u32("key postings offset")?;
    }

    // postings: the blob itself, then every key's list within it.
    section(5, &mut c)?;
    let blob_len = c.u32("postings length")? as usize;
    let blob = c.take(blob_len, "postings blob")?;
    if c.pos != checksum_off {
        return Err(BinFormatError::Layout {
            what: "postings section does not end at the checksum trailer",
        });
    }
    let key_bytes = &bytes[keys_payload_at..offsets[5] as usize];
    debug_assert_eq!(KeyRecords::over(key_bytes).len(), n_keys as usize);
    for i in 0..n_keys as usize {
        let postings_off = le_u32(key_bytes, i * KEY_RECORD_LEN + 22);
        check_id("postings offset", postings_off, blob.len().max(1))?;
        let mut pc = Cursor {
            bytes: blob,
            pos: postings_off as usize,
        };
        let count = pc.u32("postings count")?;
        for _ in 0..count {
            let id = pc.u32("postings label id")?;
            check_id("postings label", id, n_labels as usize)?;
        }
    }

    Ok(EfdbView {
        bytes,
        depth,
        catalog_digest: digest,
        counts: [n_strings, n_metrics, n_apps, n_labels, n_keys],
        offsets,
    })
}

/// Decode and fully validate an EFDB byte stream.
///
/// [`check`] runs the whole validation pass; the returned [`Efdb`] is
/// the owned decode of the checked sections (zero-copy consumers skip
/// this step and serve straight from the view).
///
/// ```
/// use efd_core::{binfmt, EfdDictionary, RoundingDepth};
/// use efd_telemetry::catalog::small_catalog;
/// use efd_telemetry::{AppLabel, Interval, NodeId};
///
/// let catalog = small_catalog();
/// let metric = catalog.id("nr_mapped_vmstat").unwrap();
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// dict.insert_raw(metric, NodeId(0), Interval::PAPER_DEFAULT, 6020.0,
///                 &AppLabel::new("ft", "X"));
/// let bytes = binfmt::write(&dict.to_parts(), &catalog);
///
/// let efdb = binfmt::read(&bytes).unwrap();
/// assert_eq!(efdb.len(), 1);
/// assert_eq!(efdb.apps(), ["ft".to_string()]);
/// assert!(efdb.matches_catalog(&catalog));
///
/// // Corruption is caught before any section is interpreted.
/// let mut bad = bytes.clone();
/// *bad.last_mut().unwrap() ^= 0xFF;
/// assert!(matches!(binfmt::read(&bad),
///                  Err(binfmt::BinFormatError::ChecksumMismatch { .. })));
/// ```
pub fn read(bytes: &[u8]) -> Result<Efdb, BinFormatError> {
    let view = check(bytes)?;
    let strings: Vec<&str> = view.strings().collect();
    let metrics = view
        .metric_string_ids()
        .map(|sid| strings[sid as usize].to_string())
        .collect();
    let (apps, labels, label_app) = view.decode_label_tables(&strings);
    let postings = view.postings();
    let entries = view
        .keys()
        .iter()
        .map(|r| EfdbEntry {
            metric: r.metric,
            node: r.node,
            interval: r.interval,
            mean_bits: r.mean_bits,
            labels: postings
                .label_ids(r.postings_off)
                .map(|id| LabelId::from_index(id as usize))
                .collect(),
        })
        .collect();
    Ok(Efdb {
        depth: view.depth(),
        catalog_digest: view.stored_catalog_digest(),
        metrics,
        apps,
        labels,
        label_app,
        entries,
    })
}

/// Decode EFDB bytes and thaw straight into a live [`EfdDictionary`]
/// (the one-call load path; metric names resolved via `catalog`).
///
/// Routed through [`check`] + [`EfdbView::to_parts`], so the sections
/// are materialized exactly once — no intermediate [`Efdb`].
pub fn read_dictionary(
    bytes: &[u8],
    catalog: &MetricCatalog,
) -> Result<EfdDictionary, BinFormatError> {
    check(bytes)?.to_parts(catalog).map(EfdDictionary::from_parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{LabeledObservation, Query};
    use efd_telemetry::catalog::small_catalog;

    fn sample_dict(c: &MetricCatalog) -> EfdDictionary {
        let m = c.id("nr_mapped_vmstat").unwrap();
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, means) in [
            ("sp", [7617.0, 7520.0, 7520.0, 7121.0]),
            ("bt", [7638.0, 7540.0, 7540.0, 7140.0]),
            ("ft", [6020.0, 6023.0, 6019.0, 6021.0]),
        ] {
            d.learn(&LabeledObservation {
                label: AppLabel::new(app, "X"),
                query: Query::from_node_means(m, Interval::PAPER_DEFAULT, &means),
            });
        }
        d
    }

    #[test]
    fn roundtrip_preserves_recognition_and_tie_order() {
        let c = small_catalog();
        let m = c.id("nr_mapped_vmstat").unwrap();
        let d = sample_dict(&c);
        let bytes = write_dictionary(&d, &c);
        let back = read_dictionary(&bytes, &c).unwrap();

        assert_eq!(back.len(), d.len());
        assert_eq!(back.depth(), d.depth());
        assert_eq!(back.labels_in_order(), d.labels_in_order());
        assert_eq!(back.app_names(), d.app_names());
        for means in [
            [7601.0, 7512.0, 7533.0, 7098.0],
            [6031.0, 5988.0, 6007.0, 6044.0],
            [1.0, 2.0, 3.0, 4.0],
        ] {
            let q = Query::from_node_means(m, Interval::PAPER_DEFAULT, &means);
            assert_eq!(back.recognize(&q), d.recognize(&q));
        }
    }

    #[test]
    fn encoding_is_canonical_across_learn_order() {
        let c = small_catalog();
        let m = c.id("nr_mapped_vmstat").unwrap();
        // Same content, keys learned in opposite order (labels interned
        // identically via preregistration).
        let order: Vec<AppLabel> = [("sp", "X"), ("bt", "X")]
            .iter()
            .map(|(a, i)| AppLabel::new(*a, *i))
            .collect();
        let mut forward = EfdDictionary::new(RoundingDepth::new(2));
        let mut reverse = EfdDictionary::new(RoundingDepth::new(2));
        forward.preregister_labels(&order);
        reverse.preregister_labels(&order);
        let sp = [7617.0, 7520.0, 7520.0, 7121.0];
        let bt = [6038.0, 6040.0, 6041.0, 6042.0];
        for (n, &mean) in sp.iter().enumerate() {
            forward.insert_raw(m, NodeId(n as u16), Interval::PAPER_DEFAULT, mean, &order[0]);
        }
        for (n, &mean) in bt.iter().enumerate() {
            forward.insert_raw(m, NodeId(n as u16), Interval::PAPER_DEFAULT, mean, &order[1]);
        }
        for (n, &mean) in bt.iter().enumerate() {
            reverse.insert_raw(m, NodeId(n as u16), Interval::PAPER_DEFAULT, mean, &order[1]);
        }
        for (n, &mean) in sp.iter().enumerate() {
            reverse.insert_raw(m, NodeId(n as u16), Interval::PAPER_DEFAULT, mean, &order[0]);
        }
        assert_eq!(write_dictionary(&forward, &c), write_dictionary(&reverse, &c));
    }

    #[test]
    fn header_fields_decode() {
        let c = small_catalog();
        let bytes = write_dictionary(&sample_dict(&c), &c);
        let f = read(&bytes).unwrap();
        assert_eq!(f.depth().get(), 2);
        assert!(f.matches_catalog(&c));
        assert_eq!(f.stored_catalog_digest(), catalog_digest(&c));
        assert_eq!(f.metrics(), ["nr_mapped_vmstat".to_string()]);
        assert_eq!(
            f.apps(),
            ["sp".to_string(), "bt".to_string(), "ft".to_string()]
        );
        assert_eq!(f.labels().len(), 3);
        assert_eq!(f.label_app().len(), 3);
    }

    #[test]
    fn keys_are_sorted_and_unique() {
        let c = small_catalog();
        let bytes = write_dictionary(&sample_dict(&c), &c);
        let f = read(&bytes).unwrap();
        let ord: Vec<_> = f
            .entries()
            .iter()
            .map(|e| (e.metric, e.node.0, e.interval.start, e.interval.end, e.mean_bits))
            .collect();
        let mut sorted = ord.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ord, sorted);
    }

    #[test]
    fn truncation_at_every_length_is_a_structured_error() {
        let c = small_catalog();
        let bytes = write_dictionary(&sample_dict(&c), &c);
        for len in 0..bytes.len() {
            let err = read(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    BinFormatError::Truncated { .. } | BinFormatError::Layout { .. }
                ),
                "prefix of {len} bytes: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_is_reported() {
        let c = small_catalog();
        let mut bytes = write_dictionary(&sample_dict(&c), &c);
        bytes[0] = b'X';
        assert_eq!(
            read(&bytes).unwrap_err(),
            BinFormatError::BadMagic {
                found: *b"XFDB"
            }
        );
    }

    #[test]
    fn version_policy_same_major_rejects_newer() {
        let c = small_catalog();
        let bytes = write_dictionary(&sample_dict(&c), &c);
        // Newer minor: rejected even with a valid checksum.
        let mut newer_minor = bytes.clone();
        newer_minor[6..8].copy_from_slice(&(VERSION_MINOR + 1).to_le_bytes());
        assert_eq!(
            read(&newer_minor).unwrap_err(),
            BinFormatError::UnsupportedVersion {
                major: VERSION_MAJOR,
                minor: VERSION_MINOR + 1
            }
        );
        // Different major: rejected.
        let mut newer_major = bytes;
        newer_major[4..6].copy_from_slice(&(VERSION_MAJOR + 1).to_le_bytes());
        assert_eq!(
            read(&newer_major).unwrap_err(),
            BinFormatError::UnsupportedVersion {
                major: VERSION_MAJOR + 1,
                minor: VERSION_MINOR
            }
        );
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let c = small_catalog();
        let mut bytes = write_dictionary(&sample_dict(&c), &c);
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            read(&bytes).unwrap_err(),
            BinFormatError::ChecksumMismatch { .. }
        ));
    }

    /// Corrupt one byte and re-stamp the checksum, so validation reaches
    /// the targeted check instead of stopping at the checksum.
    fn corrupt_and_restamp(bytes: &[u8], at: usize, val: u8) -> Vec<u8> {
        let mut out = bytes.to_vec();
        out[at] = val;
        let body = out.len() - 8;
        let sum = efd_util::hash::hash_bytes(&out[..body]);
        out[body..].copy_from_slice(&sum.to_le_bytes());
        out
    }

    #[test]
    fn invalid_depth_is_reported() {
        let c = small_catalog();
        let bytes = write_dictionary(&sample_dict(&c), &c);
        let bad = corrupt_and_restamp(&bytes, 8, 99);
        assert_eq!(read(&bad).unwrap_err(), BinFormatError::InvalidDepth(99));
    }

    #[test]
    fn out_of_range_ids_are_reported() {
        let c = small_catalog();
        let bytes = write_dictionary(&sample_dict(&c), &c);
        let f = read(&bytes).unwrap();
        assert!(!f.is_empty());
        // The apps section's first string id lives right after its count.
        let apps_off = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
        let bad = corrupt_and_restamp(&bytes, apps_off + 4, 0xFF);
        assert!(matches!(
            read(&bad).unwrap_err(),
            BinFormatError::IdOutOfRange { what: "app string", .. }
        ));
    }

    #[test]
    fn unknown_metric_on_resolution() {
        let c = small_catalog();
        let bytes = write_dictionary(&sample_dict(&c), &c);
        let f = read(&bytes).unwrap();
        let empty = MetricCatalog::new();
        assert!(matches!(
            f.into_parts(&empty).unwrap_err(),
            BinFormatError::UnknownMetric(name) if name == "nr_mapped_vmstat"
        ));
    }

    #[test]
    fn catalog_digest_is_order_sensitive() {
        use efd_telemetry::metric::MetricCategory;
        let mut a = MetricCatalog::new();
        a.register("x_vmstat", MetricCategory::Vmstat, 1.0);
        a.register("y_vmstat", MetricCategory::Vmstat, 1.0);
        let mut b = MetricCatalog::new();
        b.register("y_vmstat", MetricCategory::Vmstat, 1.0);
        b.register("x_vmstat", MetricCategory::Vmstat, 1.0);
        assert_ne!(catalog_digest(&a), catalog_digest(&b));
        assert_eq!(catalog_digest(&a), catalog_digest(&a.clone()));
    }

    #[test]
    fn empty_dictionary_roundtrips() {
        let c = small_catalog();
        let d = EfdDictionary::new(RoundingDepth::new(5));
        let bytes = write_dictionary(&d, &c);
        let back = read_dictionary(&bytes, &c).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.depth().get(), 5);
    }

    #[test]
    fn duplicate_keys_in_parts_merge_before_encoding() {
        let c = small_catalog();
        let d = sample_dict(&c);
        let canonical = write_dictionary(&d, &c);
        let mut parts = d.to_parts();
        let (fp, ids) = parts.entries[0].clone();
        parts.entries.push((fp, ids));
        assert_eq!(write(&parts, &c), canonical);
    }
}
