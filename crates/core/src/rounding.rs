//! Rounding depth: the EFD's pruning mechanism (paper Table 1).
//!
//! > "Rounding depth defines the position of a non-zero digit, counting
//! > from the left, to which we will round."
//!
//! I.e. round to `depth` *significant decimal digits*, independent of the
//! value's magnitude — so the same rule prunes `1358.0` and `0.038` without
//! knowing either in advance:
//!
//! | value  | depth 4 | depth 3 | depth 2 | depth 1 |
//! |--------|---------|---------|---------|---------|
//! | 1358.0 | 1358.0  | 1360.0  | 1400.0  | 1000.0  |
//! | 5.28   | —       | 5.28    | 5.3     | 5.0     |
//! | 0.038  | —       | —       | 0.038   | 0.04    |
//!
//! ("—" = depth exceeds the value's significant digits; the value is
//! returned unchanged, which the arithmetic below does naturally.)
//!
//! Ties round half away from zero (`f64::round` semantics). Zero and
//! non-finite values pass through unchanged. No pruning (high depth) yields
//! precise fingerprints with high exclusiveness but low repetition;
//! excessive pruning (depth 1) yields generic fingerprints with high
//! repetition but low exclusiveness — the trade-off the inner
//! cross-validation of [`crate::training`] navigates.

use std::fmt;

use serde::{Deserialize, Error, Serialize, Value};

/// Round `v` to `depth` significant decimal digits (half away from zero).
///
/// `depth` must be ≥ 1. Values whose decimal representation has at most
/// `depth` significant digits are returned unchanged (up to f64
/// round-trip). Zero, NaN and infinities pass through.
///
/// ```
/// use efd_core::rounding::round_to_depth;
/// assert_eq!(round_to_depth(1358.0, 3), 1360.0);
/// assert_eq!(round_to_depth(1358.0, 2), 1400.0);
/// assert_eq!(round_to_depth(0.038, 1), 0.04);
/// ```
pub fn round_to_depth(v: f64, depth: u8) -> f64 {
    assert!(depth >= 1, "rounding depth must be >= 1");
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    // f64 carries ~15.95 significant decimal digits; at depth >= 16 the
    // scaled value would exceed 2^53 and the "rounding" would corrupt the
    // mantissa instead. Such depths are identity by construction.
    if depth >= 16 {
        return v;
    }
    let magnitude = v.abs().log10().floor() as i32;
    let shift = depth as i32 - 1 - magnitude;
    // Above ~10^300 the scale factor itself would overflow; such
    // magnitudes carry no meaningful decimal structure for telemetry.
    if !(-300..=300).contains(&shift) {
        return v;
    }
    // Powers of ten up to 10^22 are exactly representable; negative powers
    // are NOT, so divide by the positive power instead of multiplying by
    // its inverse (keeps e.g. round(-1e9, 1) == -1e9 bit-exactly).
    if shift >= 0 {
        let factor = 10f64.powi(shift);
        (v * factor).round() / factor
    } else {
        let factor = 10f64.powi(-shift);
        (v / factor).round() * factor
    }
}

/// Validated rounding depth (1 ..= 17; 17 significant digits exceed f64
/// decimal precision, i.e. identity).
///
/// The EFD's only tunable parameter (paper Table 1 / §4): how many
/// significant decimal digits a window mean keeps before becoming a
/// dictionary key. Low depth prunes aggressively (robust, collision-prone);
/// high depth keeps precision (exclusive, repetition-poor).
///
/// ```
/// use efd_core::RoundingDepth;
///
/// let depth = RoundingDepth::new(2);
/// // Similar measurements fall onto the same key…
/// assert_eq!(depth.round(6037.2), 6000.0);
/// assert_eq!(depth.round(5980.4), 6000.0);
/// // …while depth 3 keeps them apart (the paper's SP/BT fix).
/// assert_ne!(RoundingDepth::new(3).round(6037.2), RoundingDepth::new(3).round(5980.4));
/// assert!(RoundingDepth::try_new(0).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoundingDepth(u8);

// Serialized transparently as the raw depth; deserialization re-validates
// the 1..=17 invariant instead of panicking in `new`.
impl Serialize for RoundingDepth {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for RoundingDepth {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let depth = u8::from_value(v)?;
        RoundingDepth::try_new(depth).ok_or_else(|| {
            Error::msg(format!("rounding depth {depth} outside 1..={}", Self::MAX))
        })
    }
}

impl RoundingDepth {
    /// Maximum supported depth.
    pub const MAX: u8 = 17;

    /// The paper's example-dictionary depth (Table 4).
    pub const TABLE4: RoundingDepth = RoundingDepth(2);

    /// Construct a depth; panics outside `1..=17`.
    pub fn new(depth: u8) -> Self {
        Self::try_new(depth).unwrap_or_else(|| {
            panic!("rounding depth must be in 1..={}, got {depth}", Self::MAX)
        })
    }

    /// Construct a depth, `None` outside `1..=17` — the single validation
    /// point shared by [`RoundingDepth::new`], deserialization, and
    /// dictionary restore.
    pub fn try_new(depth: u8) -> Option<Self> {
        (1..=Self::MAX).contains(&depth).then_some(Self(depth))
    }

    /// The raw depth value.
    #[inline]
    pub fn get(self) -> u8 {
        self.0
    }

    /// Round a value at this depth.
    #[inline]
    pub fn round(self, v: f64) -> f64 {
        round_to_depth(v, self.0)
    }

    /// The default candidate grid for depth selection (1..=6): telemetry
    /// means rarely carry more than six reproducible significant digits.
    pub fn candidates() -> Vec<RoundingDepth> {
        (1..=6).map(RoundingDepth).collect()
    }
}

impl fmt::Display for RoundingDepth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_table1_row_1358() {
        assert_eq!(round_to_depth(1358.0, 5), 1358.0); // "—": unchanged
        assert_eq!(round_to_depth(1358.0, 4), 1358.0);
        assert_eq!(round_to_depth(1358.0, 3), 1360.0);
        assert_eq!(round_to_depth(1358.0, 2), 1400.0);
        assert_eq!(round_to_depth(1358.0, 1), 1000.0);
    }

    #[test]
    fn paper_table1_row_5_28() {
        assert_eq!(round_to_depth(5.28, 4), 5.28); // "—"
        assert_eq!(round_to_depth(5.28, 3), 5.28);
        assert_eq!(round_to_depth(5.28, 2), 5.3);
        assert_eq!(round_to_depth(5.28, 1), 5.0);
    }

    #[test]
    fn paper_table1_row_0_038() {
        assert_eq!(round_to_depth(0.038, 3), 0.038); // "—"
        assert_eq!(round_to_depth(0.038, 2), 0.038);
        assert_eq!(round_to_depth(0.038, 1), 0.04);
    }

    #[test]
    fn table4_values_at_depth_2() {
        // The example dictionary's cells are depth-2 roundings.
        assert_eq!(round_to_depth(7617.76, 2), 7600.0);
        assert_eq!(round_to_depth(7520.0, 2), 7500.0);
        assert_eq!(round_to_depth(7121.44, 2), 7100.0);
        assert_eq!(round_to_depth(6020.0, 2), 6000.0);
        assert_eq!(round_to_depth(10980.0, 2), 11000.0);
    }

    #[test]
    fn half_rounds_away_from_zero() {
        assert_eq!(round_to_depth(1350.0, 2), 1400.0);
        assert_eq!(round_to_depth(-1350.0, 2), -1400.0);
        assert_eq!(round_to_depth(0.25, 1), 0.3);
    }

    #[test]
    fn negative_values_mirror_positive() {
        assert_eq!(round_to_depth(-1358.0, 3), -1360.0);
        assert_eq!(round_to_depth(-0.038, 1), -0.04);
    }

    #[test]
    fn zero_and_nonfinite_pass_through() {
        assert_eq!(round_to_depth(0.0, 3), 0.0);
        assert!(round_to_depth(f64::NAN, 2).is_nan());
        assert_eq!(round_to_depth(f64::INFINITY, 2), f64::INFINITY);
        assert_eq!(round_to_depth(f64::NEG_INFINITY, 2), f64::NEG_INFINITY);
    }

    #[test]
    fn rounding_can_bump_magnitude() {
        assert_eq!(round_to_depth(995.0, 2), 1000.0);
        assert_eq!(round_to_depth(0.0995, 2), 0.1);
    }

    #[test]
    fn extreme_magnitudes_pass_through() {
        assert_eq!(round_to_depth(1e308, 1), 1e308);
        assert_eq!(round_to_depth(1e-308, 1), 1e-308);
    }

    #[test]
    fn depth_type_bounds() {
        assert_eq!(RoundingDepth::new(3).get(), 3);
        assert_eq!(RoundingDepth::new(3).to_string(), "3");
        assert_eq!(RoundingDepth::candidates().len(), 6);
    }

    #[test]
    #[should_panic(expected = "rounding depth")]
    fn depth_zero_rejected() {
        RoundingDepth::new(0);
    }

    #[test]
    #[should_panic(expected = "rounding depth")]
    fn depth_18_rejected() {
        RoundingDepth::new(18);
    }

    proptest! {
        #[test]
        fn idempotent(v in -1e9f64..1e9, d in 1u8..=8) {
            let once = round_to_depth(v, d);
            let twice = round_to_depth(once, d);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn within_half_grain(v in 1e-6f64..1e9, d in 1u8..=8) {
            let r = round_to_depth(v, d);
            let magnitude = v.abs().log10().floor() as i32;
            let grain = 10f64.powi(magnitude - d as i32 + 1);
            // 1.0001 × tolerance for fp slack at grain boundaries.
            prop_assert!((r - v).abs() <= grain * 0.50001,
                "v={} d={} r={} grain={}", v, d, r, grain);
        }

        #[test]
        fn sign_symmetric(v in 1e-6f64..1e9, d in 1u8..=8) {
            prop_assert_eq!(round_to_depth(-v, d), -round_to_depth(v, d));
        }

        #[test]
        fn monotone_on_positive(a in 1e-3f64..1e9, b in 1e-3f64..1e9, d in 1u8..=8) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(round_to_depth(lo, d) <= round_to_depth(hi, d));
        }

        #[test]
        fn high_depth_is_identity(v in -1e9f64..1e9) {
            prop_assert_eq!(round_to_depth(v, 17), v);
        }
    }
}
