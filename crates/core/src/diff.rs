//! Structural dictionary diffing: what changed between two versions?
//!
//! The catalog subsystem (ROADMAP item: versioned fingerprint artifacts)
//! needs a precise, deterministic answer to "how does `hpc-apps.v3`
//! differ from `hpc-apps.v2`?". This module computes that answer at
//! three levels:
//!
//! 1. **Key structure** — fingerprints only one side knows (*added* /
//!    *removed*) and fingerprints both know but label differently
//!    (*relabelled*). Label lists compare as **sets**: duplicate votes
//!    and insertion order are representation detail, not content.
//! 2. **Per-app coverage** — for every application name either side
//!    mentions, how many keys vote for it on each side. A shrinking
//!    count is the first sign an app's fingerprints were aged out.
//! 3. **Verdict divergence** — a seeded sample of the key union replayed
//!    as single-point queries through both dictionaries, counting how
//!    often the [`normalized`](crate::dictionary::Recognition::normalized)
//!    verdicts disagree. Structure can drift without changing a single
//!    answer; this is the behavioural check.
//!
//! **Semantic equality** (the `efd diff` exit-0 contract) is structural:
//! same rounding depth, no added/removed/relabelled keys. Two artifacts
//! with different *bytes* — a JSON dump and its EFDB conversion, or two
//! EFDB files whose string tables were built in different orders — still
//! compare equal, because [`diff`] walks decoded entries, not encodings.
//!
//! Everything is deterministic: example lists sort by packed key bytes,
//! the divergence sample is drawn by a seeded [`SplitMix64`] so two runs
//! of `efd diff A B` (and CI) always report the same thing.

use std::collections::HashMap;

use efd_telemetry::metric::MetricCatalog;
use efd_util::rng::SplitMix64;

use crate::dictionary::{EfdDictionary, Recognition, Verdict};
use crate::fingerprint::Fingerprint;
use crate::observation::{ObsPoint, Query};

/// Knobs for [`diff`]. `Default` is what the CLI uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffOptions {
    /// How many union keys to replay for verdict divergence (0 disables
    /// the behavioural check entirely).
    pub samples: usize,
    /// Seed for the divergence sample draw.
    pub seed: u64,
    /// Cap on example rows retained per change class.
    pub examples: usize,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            samples: 256,
            seed: 0xD1FF,
            examples: 8,
        }
    }
}

/// Key counts voting for one application name on each side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppCoverage {
    /// Application name.
    pub app: String,
    /// Keys in `A` with at least one label for this app.
    pub keys_a: usize,
    /// Keys in `B` with at least one label for this app.
    pub keys_b: usize,
}

impl AppCoverage {
    /// Signed key-count delta (`B - A`).
    pub fn delta(&self) -> i64 {
        self.keys_b as i64 - self.keys_a as i64
    }
}

/// One sampled query whose verdicts disagree, pre-rendered for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceExample {
    /// The fingerprint replayed (rendered with the shared catalog).
    pub key: String,
    /// `A`'s normalized verdict.
    pub verdict_a: String,
    /// `B`'s normalized verdict.
    pub verdict_b: String,
}

/// Verdict-divergence sampling summary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Divergence {
    /// Union keys actually replayed.
    pub sampled: usize,
    /// Replays whose normalized verdicts differed.
    pub diverged: usize,
    /// Up to [`DiffOptions::examples`] disagreeing replays, in key order.
    pub examples: Vec<DivergenceExample>,
}

/// A key present on both sides with different label sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelabelExample {
    /// The fingerprint (rendered with the shared catalog).
    pub key: String,
    /// `A`'s label set, sorted.
    pub labels_a: Vec<String>,
    /// `B`'s label set, sorted.
    pub labels_b: Vec<String>,
}

/// The full structural report of [`diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct DictDiff {
    /// Rounding depth of `A`.
    pub depth_a: u8,
    /// Rounding depth of `B`.
    pub depth_b: u8,
    /// Key count of `A`.
    pub keys_a: usize,
    /// Key count of `B`.
    pub keys_b: usize,
    /// Keys only `B` knows.
    pub added: usize,
    /// Keys only `A` knows.
    pub removed: usize,
    /// Keys both know whose label sets differ.
    pub relabelled: usize,
    /// Up to [`DiffOptions::examples`] added keys, rendered, key order.
    pub added_examples: Vec<String>,
    /// Up to [`DiffOptions::examples`] removed keys, rendered, key order.
    pub removed_examples: Vec<String>,
    /// Up to [`DiffOptions::examples`] relabelled keys with both sides.
    pub relabel_examples: Vec<RelabelExample>,
    /// Per-app key coverage, every app either side mentions, sorted by
    /// app name.
    pub coverage: Vec<AppCoverage>,
    /// Verdict-divergence sampling result.
    pub divergence: Divergence,
}

impl DictDiff {
    /// The `efd diff` exit-0 contract: same depth and no structural
    /// change. Encoding differences (JSON vs EFDB, string-table order)
    /// never matter; verdict divergence *cannot* occur when this holds.
    pub fn semantically_equal(&self) -> bool {
        self.depth_a == self.depth_b && self.added == 0 && self.removed == 0 && self.relabelled == 0
    }
}

/// Render a normalized verdict compactly (`ft` / `[bt, sp]` / `unknown`).
pub fn render_verdict(r: &Recognition) -> String {
    match &r.verdict {
        Verdict::Recognized(app) => app.clone(),
        Verdict::Ambiguous(apps) => format!("[{}]", apps.join(", ")),
        Verdict::Unknown => "unknown".to_string(),
    }
}

/// Label set of one entry: sorted, deduplicated `app/input` strings.
fn label_set(labels: &[&efd_telemetry::AppLabel]) -> Vec<String> {
    let mut set: Vec<String> = labels.iter().map(|l| format!("{}/{}", l.app, l.input)).collect();
    set.sort();
    set.dedup();
    set
}

/// Index one dictionary: key → sorted label set, plus per-app key counts.
fn index_of(
    d: &EfdDictionary,
) -> (
    HashMap<Fingerprint, Vec<String>>,
    HashMap<String, usize>,
) {
    let mut keys = HashMap::with_capacity(d.len());
    let mut apps: HashMap<String, usize> = HashMap::new();
    for (fp, labels) in d.entries() {
        let set = label_set(&labels);
        let mut seen_apps: Vec<&str> = labels.iter().map(|l| l.app.as_str()).collect();
        seen_apps.sort_unstable();
        seen_apps.dedup();
        for app in seen_apps {
            *apps.entry(app.to_string()).or_insert(0) += 1;
        }
        keys.insert(*fp, set);
    }
    (keys, apps)
}

/// Deterministic key order: packed little-endian bytes.
fn sort_keys(keys: &mut [Fingerprint]) {
    keys.sort_unstable_by_key(|fp| fp.pack());
}

/// Compute the structural diff `A → B`.
///
/// `catalog` is only used to *render* fingerprints in example rows; both
/// dictionaries must already speak the same `MetricId` space (the CLI
/// guarantees this by decoding both artifacts against one catalog).
pub fn diff(
    a: &EfdDictionary,
    b: &EfdDictionary,
    catalog: &MetricCatalog,
    opts: &DiffOptions,
) -> DictDiff {
    let (keys_a, apps_a) = index_of(a);
    let (keys_b, apps_b) = index_of(b);

    let mut added: Vec<Fingerprint> = keys_b.keys().filter(|k| !keys_a.contains_key(k)).copied().collect();
    let mut removed: Vec<Fingerprint> = keys_a.keys().filter(|k| !keys_b.contains_key(k)).copied().collect();
    let mut relabelled: Vec<Fingerprint> = keys_a
        .iter()
        .filter(|(k, set)| keys_b.get(k).is_some_and(|other| other != *set))
        .map(|(k, _)| *k)
        .collect();
    sort_keys(&mut added);
    sort_keys(&mut removed);
    sort_keys(&mut relabelled);

    let render = |fp: &Fingerprint| fp.display(catalog);
    let added_examples = added.iter().take(opts.examples).map(&render).collect();
    let removed_examples = removed.iter().take(opts.examples).map(&render).collect();
    let relabel_examples = relabelled
        .iter()
        .take(opts.examples)
        .map(|fp| RelabelExample {
            key: render(fp),
            labels_a: keys_a[fp].clone(),
            labels_b: keys_b[fp].clone(),
        })
        .collect();

    let mut app_names: Vec<String> = apps_a.keys().chain(apps_b.keys()).cloned().collect();
    app_names.sort();
    app_names.dedup();
    let coverage = app_names
        .into_iter()
        .map(|app| AppCoverage {
            keys_a: apps_a.get(&app).copied().unwrap_or(0),
            keys_b: apps_b.get(&app).copied().unwrap_or(0),
            app,
        })
        .collect();

    let divergence = sample_divergence(a, b, &keys_a, &keys_b, catalog, opts);

    DictDiff {
        depth_a: a.depth().get(),
        depth_b: b.depth().get(),
        keys_a: a.len(),
        keys_b: b.len(),
        added: added.len(),
        removed: removed.len(),
        relabelled: relabelled.len(),
        added_examples,
        removed_examples,
        relabel_examples,
        coverage,
        divergence,
    }
}

/// Replay a seeded sample of the key union through both dictionaries as
/// single-point queries and count normalized-verdict disagreements.
fn sample_divergence(
    a: &EfdDictionary,
    b: &EfdDictionary,
    keys_a: &HashMap<Fingerprint, Vec<String>>,
    keys_b: &HashMap<Fingerprint, Vec<String>>,
    catalog: &MetricCatalog,
    opts: &DiffOptions,
) -> Divergence {
    if opts.samples == 0 {
        return Divergence::default();
    }
    let mut union: Vec<Fingerprint> = keys_a
        .keys()
        .chain(keys_b.keys().filter(|k| !keys_a.contains_key(k)))
        .copied()
        .collect();
    sort_keys(&mut union);
    // Partial Fisher–Yates: the first `n` slots become the sample.
    let n = opts.samples.min(union.len());
    let mut rng = SplitMix64::new(opts.seed);
    for i in 0..n {
        let j = i + rng.next_below((union.len() - i) as u64) as usize;
        union.swap(i, j);
    }
    let mut sample = union[..n].to_vec();
    sort_keys(&mut sample);

    let mut diverged = 0usize;
    let mut examples = Vec::new();
    for fp in &sample {
        let query = Query {
            points: vec![ObsPoint {
                metric: fp.metric,
                node: fp.node,
                interval: fp.interval,
                mean: fp.mean(),
            }],
        };
        let ra = a.recognize(&query).normalized();
        let rb = b.recognize(&query).normalized();
        if ra.verdict != rb.verdict {
            diverged += 1;
            if examples.len() < opts.examples {
                examples.push(DivergenceExample {
                    key: fp.display(catalog),
                    verdict_a: render_verdict(&ra),
                    verdict_b: render_verdict(&rb),
                });
            }
        }
    }
    Divergence {
        sampled: n,
        diverged,
        examples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::LabeledObservation;
    use crate::rounding::RoundingDepth;
    use efd_telemetry::catalog::small_catalog;
    use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};

    const W: Interval = Interval::PAPER_DEFAULT;

    fn obs(app: &str, input: &str, mean: f64) -> LabeledObservation {
        LabeledObservation {
            label: AppLabel::new(app, input),
            query: Query {
                points: vec![ObsPoint {
                    metric: MetricId(0),
                    node: NodeId(0),
                    interval: W,
                    mean,
                }],
            },
        }
    }

    fn dict(observations: &[LabeledObservation]) -> EfdDictionary {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        d.learn_all(observations);
        d
    }

    #[test]
    fn identical_dictionaries_diff_empty() {
        let d = dict(&[obs("ft", "X", 1000.0), obs("sp", "Y", 2000.0)]);
        let r = diff(&d, &d, &small_catalog(), &DiffOptions::default());
        assert!(r.semantically_equal(), "{r:?}");
        assert_eq!((r.added, r.removed, r.relabelled), (0, 0, 0));
        assert_eq!(r.divergence.diverged, 0);
        assert_eq!(r.divergence.sampled, 2);
    }

    #[test]
    fn learn_order_does_not_matter() {
        let xs = [obs("ft", "X", 1000.0), obs("sp", "Y", 1000.0)];
        let forward = dict(&xs);
        let mut reversed: Vec<_> = xs.to_vec();
        reversed.reverse();
        let backward = dict(&reversed);
        let r = diff(&forward, &backward, &small_catalog(), &DiffOptions::default());
        assert!(r.semantically_equal(), "label order is representation: {r:?}");
        assert_eq!(r.divergence.diverged, 0);
    }

    #[test]
    fn added_removed_and_relabelled_are_counted() {
        let a = dict(&[
            obs("ft", "X", 1000.0),
            obs("sp", "Y", 2000.0),
            obs("bt", "Z", 3000.0),
        ]);
        let b = dict(&[
            obs("ft", "X", 1000.0),   // unchanged
            obs("sp", "L", 2000.0),   // relabelled (input Y -> L)
            obs("miniAMR", "X", 4000.0), // added; 3000 key removed
        ]);
        let r = diff(&a, &b, &small_catalog(), &DiffOptions::default());
        assert!(!r.semantically_equal());
        assert_eq!(r.added, 1, "{r:?}");
        assert_eq!(r.removed, 1, "{r:?}");
        assert_eq!(r.relabelled, 1, "{r:?}");
        assert_eq!(r.added_examples.len(), 1);
        assert_eq!(r.relabel_examples[0].labels_a, vec!["sp/Y"]);
        assert_eq!(r.relabel_examples[0].labels_b, vec!["sp/L"]);
        let sp = r.coverage.iter().find(|c| c.app == "sp").expect("sp coverage");
        assert_eq!((sp.keys_a, sp.keys_b), (1, 1));
        let bt = r.coverage.iter().find(|c| c.app == "bt").expect("bt coverage");
        assert_eq!((bt.keys_a, bt.keys_b, bt.delta()), (1, 0, -1));
    }

    #[test]
    fn depth_mismatch_is_semantic() {
        let xs = [obs("ft", "X", 1234.5)];
        let mut a = EfdDictionary::new(RoundingDepth::new(2));
        a.learn_all(&xs);
        let mut b = EfdDictionary::new(RoundingDepth::new(3));
        b.learn_all(&xs);
        let r = diff(&a, &b, &small_catalog(), &DiffOptions::default());
        assert!(!r.semantically_equal(), "depth is part of the contract");
    }

    #[test]
    fn divergence_sampling_is_deterministic_and_capped() {
        let many: Vec<_> = (0..300)
            .map(|i| obs(if i % 2 == 0 { "ft" } else { "sp" }, "X", 1000.0 + i as f64 * 10.0))
            .collect();
        let a = dict(&many);
        let b = dict(&many[..150]);
        let opts = DiffOptions {
            samples: 64,
            ..DiffOptions::default()
        };
        let r1 = diff(&a, &b, &small_catalog(), &opts);
        let r2 = diff(&a, &b, &small_catalog(), &opts);
        assert_eq!(r1, r2, "seeded sampling must be reproducible");
        // Depth-2 rounding collapses the 300 means into fewer keys; the
        // sample covers the whole union when it fits under the cap.
        assert!(r1.divergence.sampled > 0 && r1.divergence.sampled <= 64, "{r1:?}");
        assert!(r1.divergence.diverged > 0, "removed keys answer unknown on B");
    }

    #[test]
    fn empty_vs_empty_is_equal() {
        let a = EfdDictionary::new(RoundingDepth::new(2));
        let b = EfdDictionary::new(RoundingDepth::new(2));
        let r = diff(&a, &b, &small_catalog(), &DiffOptions::default());
        assert!(r.semantically_equal());
        assert_eq!(r.divergence.sampled, 0);
        assert!(r.coverage.is_empty());
    }
}
