//! Dictionary maintenance for long-running deployments.
//!
//! A production EFD lives for months: new applications are learned
//! continuously ("as simple as adding new keys"), sites exchange
//! dictionaries, decommissioned applications must be dropped, and software
//! updates change an application's footprint, stranding stale keys. This
//! module provides the operations the paper's operational story implies
//! but does not spell out:
//!
//! * [`merge`] — union two dictionaries (e.g. per-cluster dictionaries into
//!   a site dictionary). Label lists concatenate preserving the receiving
//!   dictionary's tie-break order; depths must match (a depth-2 key and a
//!   depth-3 key never collide meaningfully, so merging across depths is
//!   rejected).
//! * [`forget_app`] / [`forget_label`] — remove an application (or one
//!   app+input) everywhere; keys whose label lists empty out disappear.
//! * [`retain_metrics`] — restrict to a metric subset (e.g. after a
//!   monitoring-config change drops samplers).

use efd_telemetry::MetricId;

use crate::dictionary::EfdDictionary;
use crate::observation::LabeledObservation;
use crate::observation::{ObsPoint, Query};

/// Errors from dictionary maintenance.
#[derive(Debug, PartialEq, Eq)]
pub enum MaintenanceError {
    /// The dictionaries were built at different rounding depths.
    DepthMismatch {
        /// Depth of the receiving dictionary.
        ours: u8,
        /// Depth of the incoming dictionary.
        theirs: u8,
    },
}

impl std::fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintenanceError::DepthMismatch { ours, theirs } => write!(
                f,
                "cannot merge dictionaries of different rounding depths ({ours} vs {theirs})"
            ),
        }
    }
}

impl std::error::Error for MaintenanceError {}

/// Merge `incoming` into `dict`: every (key, label) pair of `incoming` is
/// inserted into `dict` (idempotent for duplicates). Existing tie-break
/// order in `dict` is preserved; incoming labels append after.
pub fn merge(
    dict: &mut EfdDictionary,
    incoming: &EfdDictionary,
) -> Result<(), MaintenanceError> {
    if dict.depth() != incoming.depth() {
        return Err(MaintenanceError::DepthMismatch {
            ours: dict.depth().get(),
            theirs: incoming.depth().get(),
        });
    }
    for (fp, labels) in incoming.entries() {
        for label in labels {
            // Means are already rounded at the same depth; re-rounding is
            // idempotent, so insert_raw reproduces the key exactly.
            dict.insert_raw(fp.metric, fp.node, fp.interval, fp.mean(), label);
        }
    }
    Ok(())
}

/// Rebuild `dict` without any labels of application `app`. Returns the
/// number of keys dropped entirely (all their labels belonged to `app`).
pub fn forget_app(dict: &mut EfdDictionary, app: &str) -> usize {
    rebuild_retaining(dict, |l| l.app != app)
}

/// Rebuild `dict` without one specific label (application + input).
pub fn forget_label(dict: &mut EfdDictionary, app: &str, input: &str) -> usize {
    rebuild_retaining(dict, |l| !(l.app == app && l.input == input))
}

/// Rebuild `dict` keeping only keys of the given metrics.
pub fn retain_metrics(dict: &mut EfdDictionary, metrics: &[MetricId]) -> usize {
    let before = dict.len();
    let depth = dict.depth();
    let mut fresh = EfdDictionary::new(depth);
    for (fp, labels) in dict.entries() {
        if !metrics.contains(&fp.metric) {
            continue;
        }
        for label in labels {
            fresh.insert_raw(fp.metric, fp.node, fp.interval, fp.mean(), label);
        }
    }
    let dropped = before - fresh.len();
    *dict = fresh;
    dropped
}

fn rebuild_retaining(
    dict: &mut EfdDictionary,
    keep: impl Fn(&efd_telemetry::AppLabel) -> bool,
) -> usize {
    let before = dict.len();
    let mut fresh = EfdDictionary::new(dict.depth());
    for (fp, labels) in dict.entries() {
        for label in labels {
            if keep(label) {
                fresh.insert_raw(fp.metric, fp.node, fp.interval, fp.mean(), label);
            }
        }
    }
    let dropped = before - fresh.len();
    *dict = fresh;
    dropped
}

/// Relearn an application whose footprint changed (software update): drop
/// its old keys, then learn the new observations — the EFD's model-free
/// equivalent of retraining.
pub fn relearn_app(
    dict: &mut EfdDictionary,
    app: &str,
    observations: &[LabeledObservation],
) -> usize {
    let dropped = forget_app(dict, app);
    for obs in observations {
        debug_assert_eq!(obs.label.app, app, "relearn_app fed a foreign label");
        dict.learn(obs);
    }
    dropped
}

/// Convenience: a query probing a single fingerprint (used by maintenance
/// tooling and tests).
pub fn probe(metric: MetricId, node: efd_telemetry::NodeId, interval: efd_telemetry::Interval, mean: f64) -> Query {
    Query {
        points: vec![ObsPoint {
            metric,
            node,
            interval,
            mean,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Verdict;
    use crate::observation::Query;
    use crate::rounding::RoundingDepth;
    use efd_telemetry::{AppLabel, Interval, NodeId};

    const M: MetricId = MetricId(0);
    const M2: MetricId = MetricId(1);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn dict_with(entries: &[(&str, &str, f64)]) -> EfdDictionary {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, input, mean) in entries {
            d.insert_raw(M, NodeId(0), W, *mean, &AppLabel::new(*app, *input));
        }
        d
    }

    #[test]
    fn merge_unions_keys_and_labels() {
        let mut site = dict_with(&[("ft", "X", 6000.0), ("sp", "X", 7500.0)]);
        let cluster_b = dict_with(&[("sp", "X", 7500.0), ("kripke", "Y", 8700.0)]);
        merge(&mut site, &cluster_b).unwrap();
        assert_eq!(site.len(), 3);
        let q = Query::from_node_means(M, W, &[8700.0]);
        assert_eq!(site.recognize(&q).best(), Some("kripke"));
        // Duplicate (key, label) did not duplicate the label.
        let q = Query::from_node_means(M, W, &[7500.0]);
        assert_eq!(site.recognize(&q).app_votes.len(), 1);
    }

    #[test]
    fn merge_preserves_receiving_tie_order() {
        // Site learned sp first; incoming has bt on the same key.
        let mut site = dict_with(&[("sp", "X", 7500.0)]);
        let incoming = dict_with(&[("bt", "X", 7500.0)]);
        merge(&mut site, &incoming).unwrap();
        let q = Query::from_node_means(M, W, &[7500.0]);
        let r = site.recognize(&q);
        assert_eq!(
            r.verdict,
            Verdict::Ambiguous(vec!["sp".into(), "bt".into()])
        );
    }

    #[test]
    fn merge_rejects_depth_mismatch() {
        let mut a = EfdDictionary::new(RoundingDepth::new(2));
        let b = EfdDictionary::new(RoundingDepth::new(3));
        assert_eq!(
            merge(&mut a, &b),
            Err(MaintenanceError::DepthMismatch { ours: 2, theirs: 3 })
        );
    }

    #[test]
    fn forget_app_drops_exclusive_keys_but_keeps_shared() {
        let mut d = dict_with(&[
            ("sp", "X", 7500.0),
            ("bt", "X", 7500.0), // shared key
            ("bt", "X", 9900.0), // bt-exclusive key
        ]);
        assert_eq!(d.len(), 2);
        let dropped = forget_app(&mut d, "bt");
        assert_eq!(dropped, 1, "only the bt-exclusive key disappears");
        let q = Query::from_node_means(M, W, &[7500.0]);
        assert_eq!(d.recognize(&q).verdict, Verdict::Recognized("sp".into()));
        let q = Query::from_node_means(M, W, &[9900.0]);
        assert_eq!(d.recognize(&q).verdict, Verdict::Unknown);
    }

    #[test]
    fn forget_label_is_input_scoped() {
        let mut d = dict_with(&[("miniAMR", "X", 7800.0), ("miniAMR", "Z", 11000.0)]);
        forget_label(&mut d, "miniAMR", "Z");
        let q = Query::from_node_means(M, W, &[11000.0]);
        assert_eq!(d.recognize(&q).verdict, Verdict::Unknown);
        let q = Query::from_node_means(M, W, &[7800.0]);
        assert_eq!(d.recognize(&q).best(), Some("miniAMR"));
    }

    #[test]
    fn retain_metrics_drops_foreign_keys() {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        d.insert_raw(M, NodeId(0), W, 6000.0, &AppLabel::new("ft", "X"));
        d.insert_raw(M2, NodeId(0), W, 1234.0, &AppLabel::new("ft", "X"));
        let dropped = retain_metrics(&mut d, &[M]);
        assert_eq!(dropped, 1);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn relearn_replaces_an_apps_footprint() {
        let mut d = dict_with(&[("cg", "X", 6800.0), ("ft", "X", 6000.0)]);
        // cg's new version uses a different footprint.
        let new_obs = vec![LabeledObservation {
            label: AppLabel::new("cg", "X"),
            query: Query::from_node_means(M, W, &[9100.0]),
        }];
        relearn_app(&mut d, "cg", &new_obs);
        let q = Query::from_node_means(M, W, &[6800.0]);
        assert_eq!(d.recognize(&q).verdict, Verdict::Unknown, "old cg forgotten");
        let q = Query::from_node_means(M, W, &[9100.0]);
        assert_eq!(d.recognize(&q).best(), Some("cg"));
        let q = Query::from_node_means(M, W, &[6000.0]);
        assert_eq!(d.recognize(&q).best(), Some("ft"), "other apps untouched");
    }
}
