//! Dictionary maintenance for long-running deployments.
//!
//! A production EFD lives for months: new applications are learned
//! continuously ("as simple as adding new keys"), sites exchange
//! dictionaries, decommissioned applications must be dropped, and software
//! updates change an application's footprint, stranding stale keys. This
//! module provides the operations the paper's operational story implies
//! but does not spell out:
//!
//! * [`merge`] — union two dictionaries (e.g. per-cluster dictionaries into
//!   a site dictionary). Label lists concatenate preserving the receiving
//!   dictionary's tie-break order; depths must match (a depth-2 key and a
//!   depth-3 key never collide meaningfully, so merging across depths is
//!   rejected).
//! * [`forget_app`] / [`forget_label`] — remove an application (or one
//!   app+input) everywhere; keys whose label lists empty out disappear.
//! * [`retain_metrics`] — restrict to a metric subset (e.g. after a
//!   monitoring-config change drops samplers).
//! * [`AgingDictionary`] — epoch-stamped key aging for learn-while-serve
//!   deployments under drift: keys not refreshed for `max_age` epochs are
//!   evicted deterministically, oldest first, so the dictionary tracks a
//!   shifting fleet instead of accreting stale footprints forever.

use efd_telemetry::MetricId;
use efd_util::FxHashMap;

use crate::dictionary::EfdDictionary;
use crate::engine::{Learn, Recognize, VoteScratch};
use crate::fingerprint::Fingerprint;
use crate::observation::LabeledObservation;
use crate::observation::{ObsPoint, Query};
use crate::rounding::RoundingDepth;
use crate::Recognition;

/// Errors from dictionary maintenance.
#[derive(Debug, PartialEq, Eq)]
pub enum MaintenanceError {
    /// The dictionaries were built at different rounding depths.
    DepthMismatch {
        /// Depth of the receiving dictionary.
        ours: u8,
        /// Depth of the incoming dictionary.
        theirs: u8,
    },
}

impl std::fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintenanceError::DepthMismatch { ours, theirs } => write!(
                f,
                "cannot merge dictionaries of different rounding depths ({ours} vs {theirs})"
            ),
        }
    }
}

impl std::error::Error for MaintenanceError {}

/// Merge `incoming` into `dict`: every (key, label) pair of `incoming` is
/// inserted into `dict` (idempotent for duplicates). Existing tie-break
/// order in `dict` is preserved; incoming labels append after.
pub fn merge(
    dict: &mut EfdDictionary,
    incoming: &EfdDictionary,
) -> Result<(), MaintenanceError> {
    if dict.depth() != incoming.depth() {
        return Err(MaintenanceError::DepthMismatch {
            ours: dict.depth().get(),
            theirs: incoming.depth().get(),
        });
    }
    for (fp, labels) in incoming.entries() {
        for label in labels {
            // Means are already rounded at the same depth; re-rounding is
            // idempotent, so insert_raw reproduces the key exactly.
            dict.insert_raw(fp.metric, fp.node, fp.interval, fp.mean(), label);
        }
    }
    Ok(())
}

/// Rebuild `dict` without any labels of application `app`. Returns the
/// number of keys dropped entirely (all their labels belonged to `app`).
pub fn forget_app(dict: &mut EfdDictionary, app: &str) -> usize {
    rebuild_retaining(dict, |l| l.app != app)
}

/// Rebuild `dict` without one specific label (application + input).
pub fn forget_label(dict: &mut EfdDictionary, app: &str, input: &str) -> usize {
    rebuild_retaining(dict, |l| !(l.app == app && l.input == input))
}

/// Rebuild `dict` keeping only keys of the given metrics.
pub fn retain_metrics(dict: &mut EfdDictionary, metrics: &[MetricId]) -> usize {
    let before = dict.len();
    let depth = dict.depth();
    let mut fresh = EfdDictionary::new(depth);
    for (fp, labels) in dict.entries() {
        if !metrics.contains(&fp.metric) {
            continue;
        }
        for label in labels {
            fresh.insert_raw(fp.metric, fp.node, fp.interval, fp.mean(), label);
        }
    }
    let dropped = before - fresh.len();
    *dict = fresh;
    dropped
}

fn rebuild_retaining(
    dict: &mut EfdDictionary,
    keep: impl Fn(&efd_telemetry::AppLabel) -> bool,
) -> usize {
    let before = dict.len();
    let mut fresh = EfdDictionary::new(dict.depth());
    for (fp, labels) in dict.entries() {
        for label in labels {
            if keep(label) {
                fresh.insert_raw(fp.metric, fp.node, fp.interval, fp.mean(), label);
            }
        }
    }
    let dropped = before - fresh.len();
    *dict = fresh;
    dropped
}

/// Relearn an application whose footprint changed (software update): drop
/// its old keys, then learn the new observations — the EFD's model-free
/// equivalent of retraining.
pub fn relearn_app(
    dict: &mut EfdDictionary,
    app: &str,
    observations: &[LabeledObservation],
) -> usize {
    let dropped = forget_app(dict, app);
    for obs in observations {
        debug_assert_eq!(obs.label.app, app, "relearn_app fed a foreign label");
        dict.learn(obs);
    }
    dropped
}

/// What one [`AgingDictionary::advance`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionReport {
    /// The epoch just entered.
    pub epoch: u64,
    /// Evicted keys, oldest stamp first (ties broken by the key's packed
    /// byte order) — a deterministic audit trail.
    pub evicted: Vec<Fingerprint>,
}

impl EvictionReport {
    /// Number of keys evicted this epoch.
    pub fn evicted_keys(&self) -> usize {
        self.evicted.len()
    }
}

/// An [`EfdDictionary`] with epoch-stamped key aging.
///
/// Long-running learn-while-serve deployments drift: applications get
/// updated, their footprints move, and the keys of the old footprint are
/// never matched again — they only add memory and ambiguity. An
/// `AgingDictionary` stamps every key with the epoch it was last learned
/// in; [`AgingDictionary::advance`] enters the next epoch and evicts every
/// key whose stamp is more than `max_age` epochs old. A key survives
/// exactly `max_age` advances without being relearned; relearning it (any
/// label) refreshes the stamp.
///
/// Eviction is by *key*, not by label: a shared key refreshed by one
/// application stays alive for every application voting on it. Eviction
/// never resurrects anything — it only rebuilds from the live entry set,
/// so keys dropped by [`forget_app`]/[`AgingDictionary::forget_app`] stay
/// forgotten (the in-memory mirror of the WAL no-resurrect property).
///
/// ```
/// use efd_core::maintenance::AgingDictionary;
/// use efd_core::engine::{Learn, Recognize};
/// use efd_core::{LabeledObservation, Query, RoundingDepth, Verdict};
/// use efd_telemetry::{AppLabel, Interval, MetricId};
///
/// let mut aging = AgingDictionary::new(RoundingDepth::new(2), 1);
/// aging.learn(&LabeledObservation {
///     label: AppLabel::new("ft", "X"),
///     query: Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[6000.0]),
/// });
/// let q = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[6000.0]);
/// assert_eq!(aging.recognize(&q).best(), Some("ft"));
/// aging.advance(); // age 1 == max_age: still alive
/// aging.advance(); // age 2 > max_age: evicted
/// assert_eq!(aging.recognize(&q).verdict, Verdict::Unknown);
/// ```
#[derive(Debug, Clone)]
pub struct AgingDictionary {
    dict: EfdDictionary,
    max_age: u64,
    epoch: u64,
    /// Key → epoch it was last learned in.
    stamps: FxHashMap<Fingerprint, u64>,
}

impl AgingDictionary {
    /// An empty aging dictionary at `depth`; keys survive `max_age`
    /// epochs without refresh.
    pub fn new(depth: RoundingDepth, max_age: u64) -> Self {
        Self {
            dict: EfdDictionary::new(depth),
            max_age,
            epoch: 0,
            stamps: FxHashMap::default(),
        }
    }

    /// The wrapped dictionary (freeze it, snapshot it, serve it).
    pub fn dictionary(&self) -> &EfdDictionary {
        &self.dict
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// Whether no keys are live.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Enter the next epoch, evicting every key not learned within the
    /// last `max_age` epochs. Returns the eviction audit, oldest first.
    pub fn advance(&mut self) -> EvictionReport {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut evicted: Vec<(u64, Fingerprint)> = self
            .stamps
            .iter()
            .filter(|&(_, &stamp)| epoch - stamp > self.max_age)
            .map(|(fp, &stamp)| (stamp, *fp))
            .collect();
        evicted.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.pack().cmp(&b.1.pack())));
        if !evicted.is_empty() {
            let mut fresh = EfdDictionary::new(self.dict.depth());
            for (fp, labels) in self.dict.entries() {
                if epoch - self.stamps[fp] > self.max_age {
                    continue;
                }
                for label in labels {
                    fresh.insert_raw(fp.metric, fp.node, fp.interval, fp.mean(), label);
                }
            }
            self.dict = fresh;
            self.stamps.retain(|_, &mut stamp| epoch - stamp <= self.max_age);
        }
        EvictionReport {
            epoch,
            evicted: evicted.into_iter().map(|(_, fp)| fp).collect(),
        }
    }

    /// [`forget_app`] with the stamp table kept in sync: stamps of keys
    /// that disappeared with the application are dropped too, so a later
    /// [`AgingDictionary::advance`] cannot see (let alone resurrect) them.
    pub fn forget_app(&mut self, app: &str) -> usize {
        let dropped = forget_app(&mut self.dict, app);
        let live: efd_util::FxHashSet<Fingerprint> =
            self.dict.entries().map(|(fp, _)| *fp).collect();
        self.stamps.retain(|fp, _| live.contains(fp));
        dropped
    }
}

impl Learn for AgingDictionary {
    fn learn(&mut self, obs: &LabeledObservation) {
        let depth = self.dict.depth();
        for p in &obs.query.points {
            if let Some(fp) = Fingerprint::from_raw(p.metric, p.node, p.interval, p.mean, depth)
            {
                self.stamps.insert(fp, self.epoch);
            }
        }
        self.dict.learn(obs);
    }
}

impl Recognize for AgingDictionary {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        self.dict.recognize_into(query, scratch)
    }
}

/// Convenience: a query probing a single fingerprint (used by maintenance
/// tooling and tests).
pub fn probe(metric: MetricId, node: efd_telemetry::NodeId, interval: efd_telemetry::Interval, mean: f64) -> Query {
    Query {
        points: vec![ObsPoint {
            metric,
            node,
            interval,
            mean,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Verdict;
    use crate::observation::Query;
    use crate::rounding::RoundingDepth;
    use efd_telemetry::{AppLabel, Interval, NodeId};

    const M: MetricId = MetricId(0);
    const M2: MetricId = MetricId(1);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn dict_with(entries: &[(&str, &str, f64)]) -> EfdDictionary {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, input, mean) in entries {
            d.insert_raw(M, NodeId(0), W, *mean, &AppLabel::new(*app, *input));
        }
        d
    }

    #[test]
    fn merge_unions_keys_and_labels() {
        let mut site = dict_with(&[("ft", "X", 6000.0), ("sp", "X", 7500.0)]);
        let cluster_b = dict_with(&[("sp", "X", 7500.0), ("kripke", "Y", 8700.0)]);
        merge(&mut site, &cluster_b).unwrap();
        assert_eq!(site.len(), 3);
        let q = Query::from_node_means(M, W, &[8700.0]);
        assert_eq!(site.recognize(&q).best(), Some("kripke"));
        // Duplicate (key, label) did not duplicate the label.
        let q = Query::from_node_means(M, W, &[7500.0]);
        assert_eq!(site.recognize(&q).app_votes.len(), 1);
    }

    #[test]
    fn merge_preserves_receiving_tie_order() {
        // Site learned sp first; incoming has bt on the same key.
        let mut site = dict_with(&[("sp", "X", 7500.0)]);
        let incoming = dict_with(&[("bt", "X", 7500.0)]);
        merge(&mut site, &incoming).unwrap();
        let q = Query::from_node_means(M, W, &[7500.0]);
        let r = site.recognize(&q);
        assert_eq!(
            r.verdict,
            Verdict::Ambiguous(vec!["sp".into(), "bt".into()])
        );
    }

    #[test]
    fn merge_rejects_depth_mismatch() {
        let mut a = EfdDictionary::new(RoundingDepth::new(2));
        let b = EfdDictionary::new(RoundingDepth::new(3));
        assert_eq!(
            merge(&mut a, &b),
            Err(MaintenanceError::DepthMismatch { ours: 2, theirs: 3 })
        );
    }

    #[test]
    fn forget_app_drops_exclusive_keys_but_keeps_shared() {
        let mut d = dict_with(&[
            ("sp", "X", 7500.0),
            ("bt", "X", 7500.0), // shared key
            ("bt", "X", 9900.0), // bt-exclusive key
        ]);
        assert_eq!(d.len(), 2);
        let dropped = forget_app(&mut d, "bt");
        assert_eq!(dropped, 1, "only the bt-exclusive key disappears");
        let q = Query::from_node_means(M, W, &[7500.0]);
        assert_eq!(d.recognize(&q).verdict, Verdict::Recognized("sp".into()));
        let q = Query::from_node_means(M, W, &[9900.0]);
        assert_eq!(d.recognize(&q).verdict, Verdict::Unknown);
    }

    #[test]
    fn forget_label_is_input_scoped() {
        let mut d = dict_with(&[("miniAMR", "X", 7800.0), ("miniAMR", "Z", 11000.0)]);
        forget_label(&mut d, "miniAMR", "Z");
        let q = Query::from_node_means(M, W, &[11000.0]);
        assert_eq!(d.recognize(&q).verdict, Verdict::Unknown);
        let q = Query::from_node_means(M, W, &[7800.0]);
        assert_eq!(d.recognize(&q).best(), Some("miniAMR"));
    }

    #[test]
    fn retain_metrics_drops_foreign_keys() {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        d.insert_raw(M, NodeId(0), W, 6000.0, &AppLabel::new("ft", "X"));
        d.insert_raw(M2, NodeId(0), W, 1234.0, &AppLabel::new("ft", "X"));
        let dropped = retain_metrics(&mut d, &[M]);
        assert_eq!(dropped, 1);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn relearn_replaces_an_apps_footprint() {
        let mut d = dict_with(&[("cg", "X", 6800.0), ("ft", "X", 6000.0)]);
        // cg's new version uses a different footprint.
        let new_obs = vec![LabeledObservation {
            label: AppLabel::new("cg", "X"),
            query: Query::from_node_means(M, W, &[9100.0]),
        }];
        relearn_app(&mut d, "cg", &new_obs);
        let q = Query::from_node_means(M, W, &[6800.0]);
        assert_eq!(d.recognize(&q).verdict, Verdict::Unknown, "old cg forgotten");
        let q = Query::from_node_means(M, W, &[9100.0]);
        assert_eq!(d.recognize(&q).best(), Some("cg"));
        let q = Query::from_node_means(M, W, &[6000.0]);
        assert_eq!(d.recognize(&q).best(), Some("ft"), "other apps untouched");
    }

    // ---- AgingDictionary: aging / eviction ordering -------------------

    fn labeled(app: &str, mean: f64) -> LabeledObservation {
        LabeledObservation {
            label: AppLabel::new(app, "X"),
            query: Query::from_node_means(M, W, &[mean]),
        }
    }

    #[test]
    fn aging_evicts_only_stale_keys() {
        use crate::engine::{Learn, Recognize};
        let mut aging = AgingDictionary::new(RoundingDepth::new(2), 1);
        aging.learn(&labeled("old", 6000.0)); // epoch 0
        aging.advance(); // epoch 1
        aging.learn(&labeled("new", 8100.0)); // epoch 1
        let report = aging.advance(); // epoch 2: "old" is 2 > max_age=1
        assert_eq!(report.epoch, 2);
        assert_eq!(report.evicted_keys(), 1);
        let q = Query::from_node_means(M, W, &[6000.0]);
        assert_eq!(aging.recognize(&q).verdict, Verdict::Unknown, "old evicted");
        let q = Query::from_node_means(M, W, &[8100.0]);
        assert_eq!(aging.recognize(&q).best(), Some("new"));
        assert_eq!(aging.len(), 1);
    }

    #[test]
    fn relearning_refreshes_the_stamp() {
        use crate::engine::{Learn, Recognize};
        let mut aging = AgingDictionary::new(RoundingDepth::new(2), 1);
        aging.learn(&labeled("ft", 6000.0)); // epoch 0
        aging.advance(); // epoch 1: age 1, still alive
        aging.learn(&labeled("ft", 6000.0)); // refresh at epoch 1
        let report = aging.advance(); // epoch 2: age 1 again
        assert!(report.evicted.is_empty(), "refreshed key must survive");
        let q = Query::from_node_means(M, W, &[6000.0]);
        assert_eq!(aging.recognize(&q).best(), Some("ft"));
    }

    #[test]
    fn eviction_order_is_oldest_first_and_deterministic() {
        use crate::engine::Learn;
        let build = || {
            let mut aging = AgingDictionary::new(RoundingDepth::new(2), 2);
            aging.learn(&labeled("a", 9900.0)); // epoch 0 — oldest
            aging.advance();
            // Two keys in epoch 1: tie broken by packed key bytes.
            aging.learn(&labeled("b", 8100.0));
            aging.learn(&labeled("c", 1200.0));
            aging.advance(); // epoch 2
            let r3 = aging.advance(); // epoch 3: "a" at age 3 falls out
            let r4 = aging.advance(); // epoch 4: "b"/"c" at age 3 fall out
            (r3, r4)
        };
        let (run1, run2) = (build(), build());
        assert_eq!(run1, run2, "eviction audit must be deterministic");
        let (r3, r4) = run1;
        // Oldest stamp falls out first, in its own epoch.
        assert_eq!(r3.evicted_keys(), 1);
        assert_eq!(r3.evicted[0].mean(), 9900.0);
        // Equal stamps: tie broken by the packed key bytes.
        assert_eq!(r4.evicted_keys(), 2);
        assert!(r4.evicted[0].pack() < r4.evicted[1].pack());
    }

    #[test]
    fn shared_key_survives_through_either_apps_refresh() {
        use crate::engine::{Learn, Recognize};
        let mut aging = AgingDictionary::new(RoundingDepth::new(2), 1);
        aging.learn(&labeled("sp", 7500.0));
        aging.learn(&labeled("bt", 7500.0)); // same key, second label
        aging.advance();
        aging.learn(&labeled("sp", 7500.0)); // only sp refreshes
        aging.advance();
        aging.advance();
        // The key aged out (last refresh 2 epochs ago with max_age 1)…
        let q = Query::from_node_means(M, W, &[7500.0]);
        assert_eq!(aging.recognize(&q).verdict, Verdict::Unknown);
        // …but while alive, one app's refresh kept *both* labels voting.
        let mut aging = AgingDictionary::new(RoundingDepth::new(2), 1);
        aging.learn(&labeled("sp", 7500.0));
        aging.learn(&labeled("bt", 7500.0));
        aging.advance();
        aging.learn(&labeled("sp", 7500.0));
        let report = aging.advance();
        assert!(report.evicted.is_empty());
        let r = aging.recognize(&q);
        assert_eq!(r.verdict, Verdict::Ambiguous(vec!["bt".into(), "sp".into()]));
    }

    #[test]
    fn eviction_during_online_relearning_never_resurrects_forgotten_keys() {
        use crate::engine::{Learn, Recognize};
        // The in-memory mirror of the PR 6 WAL no-resurrect property:
        // forget an app, keep relearning others (the online-relearning
        // loop), advance epochs — the forgotten footprint must never
        // come back, not even transiently through an eviction rebuild.
        let mut aging = AgingDictionary::new(RoundingDepth::new(2), 1);
        aging.learn(&labeled("miner", 23_000.0)); // exclusive key
        aging.learn(&labeled("miner", 7500.0)); // shared with sp below
        aging.learn(&labeled("sp", 7500.0));
        aging.learn(&labeled("ft", 6000.0));
        let dropped = aging.forget_app("miner");
        assert_eq!(dropped, 1, "only the miner-exclusive key disappears");

        for round in 0..4 {
            aging.learn(&labeled("sp", 7500.0));
            aging.learn(&labeled("ft", 6000.0));
            let report = aging.advance();
            assert!(
                report.evicted.is_empty(),
                "round {round}: refreshed keys must not age out"
            );
            let q = Query::from_node_means(M, W, &[23_000.0]);
            assert_eq!(aging.recognize(&q).verdict, Verdict::Unknown);
            let q = Query::from_node_means(M, W, &[7500.0]);
            let r = aging.recognize(&q);
            assert_eq!(r.verdict, Verdict::Recognized("sp".into()));
            assert!(
                r.label_votes.iter().all(|(l, _)| l.app != "miner"),
                "forgotten app resurrected in round {round}: {:?}",
                r.label_votes
            );
        }
    }
}
