//! Combinatorial fingerprints (paper future work, §6).
//!
//! > "Going forward, we can make fingerprints more exclusive by combining
//! > multiple system metrics and / or multiple time intervals."
//!
//! Two composition modes exist and differ sharply:
//!
//! * **Disjunctive (voting)** — what [`crate::dictionary::EfdDictionary`]
//!   already does when configured with several metrics/intervals: each
//!   point is looked up independently and votes. More data per execution,
//!   but a *collision on any single metric* still contributes votes.
//! * **Conjunctive (combo keys)** — this module: one key per (node,
//!   interval) is the *tuple of rounded means across all configured
//!   metrics*. Two applications collide only if they collide on **every**
//!   metric simultaneously — the Shazam "combinatorial hash" idea, maximal
//!   exclusiveness at the cost of higher sensitivity to per-metric noise
//!   (one noisy metric breaks the whole key).
//!
//! The `ablation_multimetric` bench quantifies the trade-off.

use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
use efd_util::hash::FxHasher;
use efd_util::FxHashMap;

use crate::dictionary::{Recognition, Verdict};
use crate::observation::{LabeledObservation, Query};
use crate::rounding::RoundingDepth;

use std::hash::{Hash, Hasher};

/// A conjunctive key: node, interval, and the hash of all (metric,
/// rounded-mean) pairs in configuration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ComboKey {
    node: NodeId,
    interval: Interval,
    means_hash: u64,
}

/// Dictionary over conjunctive multi-metric fingerprints.
#[derive(Debug, Clone)]
pub struct ComboDictionary {
    depth: RoundingDepth,
    metrics: Vec<MetricId>,
    map: FxHashMap<ComboKey, Vec<u32>>,
    labels: Vec<AppLabel>,
    label_ids: FxHashMap<AppLabel, u32>,
    apps: Vec<String>,
}

impl ComboDictionary {
    /// Empty combo dictionary over `metrics` (order matters and must match
    /// between learning and lookup), pruning at `depth`.
    pub fn new(metrics: Vec<MetricId>, depth: RoundingDepth) -> Self {
        assert!(!metrics.is_empty(), "combo dictionary needs >= 1 metric");
        Self {
            depth,
            metrics,
            map: FxHashMap::default(),
            labels: Vec::new(),
            label_ids: FxHashMap::default(),
            apps: Vec::new(),
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Build the combo keys of a query: one per (node, interval) that has
    /// a finite mean for *every* configured metric.
    fn combo_keys(&self, query: &Query) -> Vec<ComboKey> {
        // Group means by (node, interval) in configured metric order.
        let mut groups: FxHashMap<(NodeId, Interval), Vec<Option<f64>>> = FxHashMap::default();
        for p in &query.points {
            let Some(pos) = self.metrics.iter().position(|&m| m == p.metric) else {
                continue;
            };
            let slot = groups
                .entry((p.node, p.interval))
                .or_insert_with(|| vec![None; self.metrics.len()]);
            slot[pos] = Some(p.mean).filter(|m| m.is_finite());
        }
        let mut keys: Vec<(NodeId, Interval, u64)> = Vec::new();
        for ((node, interval), means) in groups {
            if means.iter().any(|m| m.is_none()) {
                continue; // conjunctive: every metric must be present
            }
            let mut h = FxHasher::default();
            for m in means.into_iter().flatten() {
                let rounded = self.depth.round(m);
                let rounded = if rounded == 0.0 { 0.0 } else { rounded };
                h.write_u64(rounded.to_bits());
            }
            keys.push((node, interval, h.finish()));
        }
        // Deterministic order for reproducible vote traversal.
        keys.sort_by_key(|&(n, iv, _)| (n, iv));
        keys.into_iter()
            .map(|(node, interval, means_hash)| ComboKey {
                node,
                interval,
                means_hash,
            })
            .collect()
    }

    fn intern(&mut self, label: &AppLabel) -> u32 {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.labels.push(label.clone());
        self.label_ids.insert(label.clone(), id);
        if !self.apps.contains(&label.app) {
            self.apps.push(label.app.clone());
        }
        id
    }

    /// Rebuild a learned **single-metric** [`crate::EfdDictionary`] as
    /// conjunctive combo keys: one observation per stored
    /// `(fingerprint, label)` pair (re-rounding an already-rounded mean is
    /// idempotent, so the key set is preserved). On single-metric queries
    /// the result is answer-equivalent to the source dictionary.
    ///
    /// Returns `None` unless the dictionary spans exactly one metric —
    /// reconstructing *joint* multi-metric observations from a
    /// disjunctive store is ill-posed (the per-metric entries no longer
    /// record which means co-occurred).
    ///
    /// ```
    /// use efd_core::multi::ComboDictionary;
    /// use efd_core::{EfdDictionary, Query, RoundingDepth};
    /// use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
    ///
    /// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
    /// dict.insert_raw(MetricId(0), NodeId(0), Interval::PAPER_DEFAULT, 6020.0,
    ///                 &AppLabel::new("ft", "X"));
    /// let combo = ComboDictionary::from_single_metric(&dict).unwrap();
    /// let q = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[6004.0]);
    /// assert_eq!(combo.recognize(&q).best(), dict.recognize(&q).best());
    /// ```
    pub fn from_single_metric(dict: &crate::dictionary::EfdDictionary) -> Option<Self> {
        let mut metrics: Vec<MetricId> = Vec::new();
        for (fp, _) in dict.entries() {
            if !metrics.contains(&fp.metric) {
                metrics.push(fp.metric);
            }
        }
        let [metric] = metrics.as_slice() else {
            return None;
        };
        let mut combo = Self::new(vec![*metric], dict.depth());
        for (fp, labels) in dict.entries() {
            for label in labels {
                combo.learn(&LabeledObservation {
                    label: label.clone(),
                    query: Query {
                        points: vec![crate::observation::ObsPoint {
                            metric: fp.metric,
                            node: fp.node,
                            interval: fp.interval,
                            mean: fp.mean(),
                        }],
                    },
                });
            }
        }
        Some(combo)
    }

    /// Learn one labeled observation.
    pub fn learn(&mut self, obs: &LabeledObservation) {
        let keys = self.combo_keys(&obs.query);
        let id = self.intern(&obs.label);
        for key in keys {
            let list = self.map.entry(key).or_default();
            if !list.contains(&id) {
                list.push(id);
            }
        }
    }

    /// Learn a batch.
    pub fn learn_all(&mut self, observations: &[LabeledObservation]) {
        for o in observations {
            self.learn(o);
        }
    }

    /// Recognize with conjunctive keys; same vote/tie/unknown semantics as
    /// the base dictionary.
    pub fn recognize(&self, query: &Query) -> Recognition {
        let keys = self.combo_keys(query);
        let total_points = keys.len();
        let mut app_votes: Vec<(String, u32)> = Vec::new();
        let mut label_votes: Vec<(AppLabel, u32)> = Vec::new();
        let mut matched = 0usize;
        for key in keys {
            let Some(ids) = self.map.get(&key) else {
                continue;
            };
            matched += 1;
            let mut apps_here: Vec<&str> = Vec::new();
            for &id in ids {
                let label = &self.labels[id as usize];
                match label_votes.iter_mut().find(|(l, _)| l == label) {
                    Some((_, v)) => *v += 1,
                    None => label_votes.push((label.clone(), 1)),
                }
                if !apps_here.contains(&label.app.as_str()) {
                    apps_here.push(&label.app);
                    match app_votes.iter_mut().find(|(a, _)| a == &label.app) {
                        Some((_, v)) => *v += 1,
                        None => app_votes.push((label.app.clone(), 1)),
                    }
                }
            }
        }
        // Stable sort keeps first-learned order among ties.
        app_votes.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        label_votes.sort_by_key(|&(_, v)| std::cmp::Reverse(v));

        let verdict = match app_votes.as_slice() {
            [] => Verdict::Unknown,
            [(a, _)] => Verdict::Recognized(a.clone()),
            [(a, top), rest @ ..] => {
                let mut tied = vec![a.clone()];
                tied.extend(
                    rest.iter()
                        .take_while(|(_, v)| v == top)
                        .map(|(x, _)| x.clone()),
                );
                if tied.len() == 1 {
                    Verdict::Recognized(tied.pop().unwrap())
                } else {
                    Verdict::Ambiguous(tied)
                }
            }
        };
        Recognition {
            verdict,
            app_votes,
            label_votes,
            matched_points: matched,
            total_points,
        }
    }
}

impl crate::engine::Learn for ComboDictionary {
    fn learn(&mut self, obs: &LabeledObservation) {
        ComboDictionary::learn(self, obs);
    }

    fn learn_all(&mut self, observations: &[LabeledObservation]) {
        ComboDictionary::learn_all(self, observations);
    }
}

/// Conjunctive keys as an engine backend.
///
/// The combo path groups points into per-(node, interval) tuples before
/// voting, so it has its own aggregation structure and ignores the dense
/// scratch; answers are returned in [`Recognition::normalized`] order per
/// the engine contract. Note `total_points` counts *complete metric
/// combinations*, not raw points — identical to the raw point count only
/// when every configured metric is present and finite.
impl crate::engine::Recognize for ComboDictionary {
    fn recognize_into(
        &self,
        query: &Query,
        _scratch: &mut crate::engine::VoteScratch,
    ) -> Recognition {
        self.recognize(query).normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M0: MetricId = MetricId(0);
    const M1: MetricId = MetricId(1);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn obs(app: &str, m0: [f64; 2], m1: [f64; 2]) -> LabeledObservation {
        let mut q = Query::default();
        for (n, (&a, &b)) in m0.iter().zip(m1.iter()).enumerate() {
            q.points.push(crate::observation::ObsPoint {
                metric: M0,
                node: NodeId(n as u16),
                interval: W,
                mean: a,
            });
            q.points.push(crate::observation::ObsPoint {
                metric: M1,
                node: NodeId(n as u16),
                interval: W,
                mean: b,
            });
        }
        LabeledObservation {
            label: AppLabel::new(app, "X"),
            query: q,
        }
    }

    /// sp and bt collide on metric 0 (both ~7500) but differ on metric 1
    /// (4000 vs 9000): conjunctive keys must separate them.
    fn train() -> Vec<LabeledObservation> {
        vec![
            obs("sp", [7520.0, 7520.0], [4010.0, 4010.0]),
            obs("bt", [7520.0, 7520.0], [9020.0, 9020.0]),
        ]
    }

    #[test]
    fn conjunction_separates_single_metric_collisions() {
        let mut combo = ComboDictionary::new(vec![M0, M1], RoundingDepth::new(2));
        combo.learn_all(&train());

        let r = combo.recognize(&obs("?", [7530.0, 7510.0], [4020.0, 3990.0]).query);
        assert_eq!(r.verdict, Verdict::Recognized("sp".into()));
        let r = combo.recognize(&obs("?", [7530.0, 7510.0], [9010.0, 8990.0]).query);
        assert_eq!(r.verdict, Verdict::Recognized("bt".into()));

        // The disjunctive base dictionary with the same data ties instead.
        let mut base = crate::dictionary::EfdDictionary::new(RoundingDepth::new(2));
        base.learn_all(&train());
        let r = base.recognize(&obs("?", [7530.0, 7510.0], [4020.0, 3990.0]).query);
        // base: metric0 matches both, metric1 matches sp only → sp wins by
        // votes (sp 4, bt 2) — voting *can* still separate, but the combo
        // is exclusive at the key level:
        assert_eq!(r.best(), Some("sp"));
        let stats_collide = base
            .lookup_raw(M0, NodeId(0), W, 7520.0)
            .map(|l| l.len())
            .unwrap();
        assert_eq!(stats_collide, 2, "base dictionary key is shared");
    }

    #[test]
    fn mismatched_combination_is_unknown() {
        let mut combo = ComboDictionary::new(vec![M0, M1], RoundingDepth::new(2));
        combo.learn_all(&train());
        // sp's metric0 with an unseen metric1 level: no conjunctive key.
        let r = combo.recognize(&obs("?", [7520.0, 7520.0], [6000.0, 6000.0]).query);
        assert_eq!(r.verdict, Verdict::Unknown);
    }

    #[test]
    fn missing_metric_skips_the_point() {
        let mut combo = ComboDictionary::new(vec![M0, M1], RoundingDepth::new(2));
        combo.learn_all(&train());
        // Query carries only metric 0: no complete combination exists.
        let mut q = Query::default();
        q.points.push(crate::observation::ObsPoint {
            metric: M0,
            node: NodeId(0),
            interval: W,
            mean: 7520.0,
        });
        let r = combo.recognize(&q);
        assert_eq!(r.total_points, 0);
        assert_eq!(r.verdict, Verdict::Unknown);
    }

    #[test]
    fn from_single_metric_is_answer_equivalent() {
        use crate::dictionary::EfdDictionary;

        let mut dict = EfdDictionary::new(RoundingDepth::new(2));
        for (app, means) in [("ft", [6020.0, 6019.0]), ("sp", [7520.0, 7121.0])] {
            for (n, &mean) in means.iter().enumerate() {
                dict.insert_raw(M0, NodeId(n as u16), W, mean, &AppLabel::new(app, "X"));
            }
        }
        let combo = ComboDictionary::from_single_metric(&dict).expect("one metric");
        assert_eq!(combo.len(), dict.len());
        for means in [[6001.0, 5995.0], [7511.0, 7102.0], [1.0, 2.0]] {
            let q = crate::observation::Query::from_node_means(M0, W, &means);
            assert_eq!(
                combo.recognize(&q).normalized(),
                dict.recognize(&q).normalized()
            );
        }
    }

    #[test]
    fn from_single_metric_rejects_empty_and_multi_metric() {
        use crate::dictionary::EfdDictionary;

        let empty = EfdDictionary::new(RoundingDepth::new(2));
        assert!(ComboDictionary::from_single_metric(&empty).is_none());

        let mut two = EfdDictionary::new(RoundingDepth::new(2));
        two.insert_raw(M0, NodeId(0), W, 6020.0, &AppLabel::new("ft", "X"));
        two.insert_raw(M1, NodeId(0), W, 4010.0, &AppLabel::new("ft", "X"));
        assert!(ComboDictionary::from_single_metric(&two).is_none());
    }

    #[test]
    fn key_count_is_per_node() {
        let mut combo = ComboDictionary::new(vec![M0, M1], RoundingDepth::new(2));
        combo.learn_all(&train());
        // 2 apps × 2 nodes, all distinct conjunctions.
        assert_eq!(combo.len(), 4);
    }
}
