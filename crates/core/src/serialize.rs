//! Dictionary persistence.
//!
//! The paper's closing argument: "If application execution fingerprints are
//! sufficiently exclusive, learning new applications is as simple as adding
//! new keys to the dictionary." That only works if dictionaries survive
//! across sessions — this module dumps them to JSON (inspectable,
//! greppable, mergeable) keyed by *metric names* so dumps are portable
//! across catalog rebuilds.

use std::fmt;

use serde::{Deserialize, Error, Serialize, Value};

use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::{AppLabel, Interval, NodeId};

use crate::dictionary::EfdDictionary;
use crate::rounding::RoundingDepth;

/// Serializable dictionary snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct DictionaryDump {
    /// Rounding depth the dictionary was built with.
    pub depth: u8,
    /// Labels in first-learned order — the tie-break order of the paper's
    /// "array of application names". Restored before entries so ambiguous
    /// verdicts order identically.
    pub label_order: Vec<(String, String)>,
    /// Entries in insertion order.
    pub entries: Vec<DumpEntry>,
}

// `label_order` is `#[serde(default)]`: dumps written before it existed
// restore with an empty order and fall back to entry order.
impl Serialize for DictionaryDump {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("depth".to_string(), self.depth.to_value()),
            ("label_order".to_string(), self.label_order.to_value()),
            ("entries".to_string(), self.entries.to_value()),
        ])
    }
}

impl Deserialize for DictionaryDump {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(DictionaryDump {
            depth: RoundingDepth::from_value(
                v.get("depth").ok_or_else(|| Error::msg("missing field `depth`"))?,
            )?
            .get(),
            label_order: match v.get("label_order") {
                Some(order) => Vec::from_value(order)?,
                None => Vec::new(),
            },
            entries: Vec::from_value(
                v.get("entries")
                    .ok_or_else(|| Error::msg("missing field `entries`"))?,
            )?,
        })
    }
}

/// One key-value pair of the dump.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpEntry {
    /// Metric name (portable across catalogs).
    pub metric: String,
    /// Node id.
    pub node: u16,
    /// Interval start second.
    pub start: u32,
    /// Interval end second.
    pub end: u32,
    /// Rounded mean.
    pub mean: f64,
    /// Labels in insertion order, as (app, input).
    pub labels: Vec<(String, String)>,
}

serde::impl_serde_struct!(DumpEntry {
    metric,
    node,
    start,
    end,
    mean,
    labels,
});

/// Errors restoring a dump.
///
/// Marked `#[non_exhaustive]`: future dump validations may add variants
/// without a semver break, so downstream matches need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum RestoreError {
    /// A dumped metric name is absent from the catalog.
    UnknownMetric(String),
    /// The dumped rounding depth is outside `1..=17`.
    InvalidDepth(u8),
    /// The dumped rounding depth is valid but disagrees with the depth the
    /// caller expects (see [`restore_expecting`]). Mixing depths silently
    /// would produce a dictionary whose keys never match queries rounded
    /// at the expected depth.
    DepthMismatch {
        /// The depth the caller expected.
        expected: u8,
        /// The depth recorded in the dump.
        found: u8,
    },
    /// JSON decode failure.
    Json(serde_json::Error),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::UnknownMetric(m) => write!(f, "metric {m:?} not in catalog"),
            RestoreError::InvalidDepth(d) => write!(f, "rounding depth {d} outside 1..=17"),
            RestoreError::DepthMismatch { expected, found } => write!(
                f,
                "dump was built at rounding depth {found}, caller expects depth {expected}"
            ),
            RestoreError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Snapshot a dictionary (metric ids resolved to names via `catalog`).
pub fn dump(dict: &EfdDictionary, catalog: &MetricCatalog) -> DictionaryDump {
    let entries = dict
        .entries()
        .map(|(fp, labels)| DumpEntry {
            metric: catalog.name(fp.metric).to_string(),
            node: fp.node.0,
            start: fp.interval.start,
            end: fp.interval.end,
            mean: fp.mean(),
            labels: labels
                .iter()
                .map(|l| (l.app.clone(), l.input.clone()))
                .collect(),
        })
        .collect();
    DictionaryDump {
        depth: dict.depth().get(),
        label_order: dict
            .labels_in_order()
            .iter()
            .map(|l| (l.app.clone(), l.input.clone()))
            .collect(),
        entries,
    }
}

/// Rebuild a dictionary from a dump. Insertion order (and therefore
/// tie-break order) is preserved. Means are already rounded; re-rounding
/// is idempotent.
pub fn restore(
    dump: &DictionaryDump,
    catalog: &MetricCatalog,
) -> Result<EfdDictionary, RestoreError> {
    // Hand-constructed dumps can carry any u8; validate instead of letting
    // `RoundingDepth::new` panic inside a Result-returning API.
    let depth =
        RoundingDepth::try_new(dump.depth).ok_or(RestoreError::InvalidDepth(dump.depth))?;
    let mut dict = EfdDictionary::new(depth);
    let order: Vec<AppLabel> = dump
        .label_order
        .iter()
        .map(|(app, input)| AppLabel::new(app, input))
        .collect();
    dict.preregister_labels(&order);
    for e in &dump.entries {
        let metric = catalog
            .id(&e.metric)
            .ok_or_else(|| RestoreError::UnknownMetric(e.metric.clone()))?;
        let interval = Interval::new(e.start, e.end);
        for (app, input) in &e.labels {
            dict.insert_raw(metric, NodeId(e.node), interval, e.mean, &AppLabel::new(app, input));
        }
    }
    Ok(dict)
}

/// [`restore`], but also enforce that the dump was built at the rounding
/// depth the caller's pipeline expects.
///
/// `restore` alone accepts *any* valid depth — correct when the caller
/// adopts the dump's depth, silently wrong when the caller already rounds
/// queries at a fixed depth (a serving tier, a dictionary about to be
/// merged into another): every lookup would miss, indistinguishable from
/// an all-`Unknown` workload. This variant turns that state into a typed
/// [`RestoreError::DepthMismatch`] before any entry is inserted.
pub fn restore_expecting(
    dump: &DictionaryDump,
    catalog: &MetricCatalog,
    expected: RoundingDepth,
) -> Result<EfdDictionary, RestoreError> {
    if dump.depth != expected.get() {
        return Err(RestoreError::DepthMismatch {
            expected: expected.get(),
            found: dump.depth,
        });
    }
    restore(dump, catalog)
}

/// Dump to pretty JSON.
pub fn to_json(dict: &EfdDictionary, catalog: &MetricCatalog) -> String {
    serde_json::to_string_pretty(&dump(dict, catalog)).expect("dump serialization cannot fail")
}

/// Restore from JSON produced by [`to_json`].
pub fn from_json(json: &str, catalog: &MetricCatalog) -> Result<EfdDictionary, RestoreError> {
    let d: DictionaryDump = serde_json::from_str(json).map_err(RestoreError::Json)?;
    restore(&d, catalog)
}

/// [`from_json`] with a depth expectation (see [`restore_expecting`]).
pub fn from_json_expecting(
    json: &str,
    catalog: &MetricCatalog,
    expected: RoundingDepth,
) -> Result<EfdDictionary, RestoreError> {
    let d: DictionaryDump = serde_json::from_str(json).map_err(RestoreError::Json)?;
    restore_expecting(&d, catalog, expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{LabeledObservation, Query};
    use efd_telemetry::catalog::small_catalog;
    

    fn sample_dict(c: &MetricCatalog) -> EfdDictionary {
        let m = c.id("nr_mapped_vmstat").unwrap();
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, means) in [
            ("sp", [7617.0, 7520.0, 7520.0, 7121.0]),
            ("bt", [7638.0, 7540.0, 7540.0, 7140.0]),
        ] {
            d.learn(&LabeledObservation {
                label: AppLabel::new(app, "X"),
                query: Query::from_node_means(m, Interval::PAPER_DEFAULT, &means),
            });
        }
        d
    }

    #[test]
    fn roundtrip_preserves_recognition_and_order() {
        let c = small_catalog();
        let m = c.id("nr_mapped_vmstat").unwrap();
        let d = sample_dict(&c);
        let json = to_json(&d, &c);
        let back = from_json(&json, &c).unwrap();

        assert_eq!(back.len(), d.len());
        assert_eq!(back.depth(), d.depth());
        // Tie array order (sp first) survives.
        let q = Query::from_node_means(m, Interval::PAPER_DEFAULT, &[7600.0, 7500.0, 7500.0, 7100.0]);
        let (a, b) = (d.recognize(&q), back.recognize(&q));
        assert_eq!(a.verdict, b.verdict);
        // sp/bt tie: best() is the lexicographic minimum of the tied set.
        assert_eq!(a.best(), Some("bt"));
    }

    #[test]
    fn dump_uses_metric_names() {
        let c = small_catalog();
        let d = sample_dict(&c);
        let dmp = dump(&d, &c);
        assert!(dmp.entries.iter().all(|e| e.metric == "nr_mapped_vmstat"));
        assert_eq!(dmp.depth, 2);
        // sp/bt share the collided keys in order.
        let first = &dmp.entries[0];
        assert_eq!(
            first.labels,
            vec![("sp".to_string(), "X".to_string()), ("bt".to_string(), "X".to_string())]
        );
    }

    #[test]
    fn restore_rejects_unknown_metric() {
        let c = small_catalog();
        let d = sample_dict(&c);
        let mut dmp = dump(&d, &c);
        dmp.entries[0].metric = "not_a_metric".into();
        assert!(matches!(
            restore(&dmp, &c),
            Err(RestoreError::UnknownMetric(_))
        ));
    }

    #[test]
    fn incremental_learning_after_restore() {
        // "Learning new applications is as simple as adding new keys."
        let c = small_catalog();
        let m = c.id("nr_mapped_vmstat").unwrap();
        let json = to_json(&sample_dict(&c), &c);
        let mut back = from_json(&json, &c).unwrap();
        back.learn(&LabeledObservation {
            label: AppLabel::new("kripke", "Y"),
            query: Query::from_node_means(m, Interval::PAPER_DEFAULT, &[8730.0; 4]),
        });
        let q = Query::from_node_means(m, Interval::PAPER_DEFAULT, &[8700.0; 4]);
        assert_eq!(back.recognize(&q).best(), Some("kripke"));
    }

    #[test]
    fn out_of_range_depth_is_an_error() {
        let c = small_catalog();
        // Through the JSON path: validated during deserialization.
        assert!(matches!(
            from_json(r#"{"depth":0,"label_order":[],"entries":[]}"#, &c),
            Err(RestoreError::Json(_))
        ));
        // Through a hand-constructed dump: validated by restore().
        let mut dmp = dump(&sample_dict(&c), &c);
        dmp.depth = 99;
        assert!(matches!(
            restore(&dmp, &c),
            Err(RestoreError::InvalidDepth(99))
        ));
    }

    #[test]
    fn depth_mismatch_is_a_typed_error() {
        let c = small_catalog();
        let d = sample_dict(&c); // built at depth 2
        let json = to_json(&d, &c);

        // Matching expectation restores normally.
        let back = from_json_expecting(&json, &c, RoundingDepth::new(2)).unwrap();
        assert_eq!(back.len(), d.len());

        // A disagreeing expectation is surfaced before any entry lands,
        // instead of silently producing a dictionary that never matches.
        assert!(matches!(
            from_json_expecting(&json, &c, RoundingDepth::new(3)),
            Err(RestoreError::DepthMismatch {
                expected: 3,
                found: 2
            })
        ));
        let dmp = dump(&d, &c);
        assert!(matches!(
            restore_expecting(&dmp, &c, RoundingDepth::new(7)),
            Err(RestoreError::DepthMismatch {
                expected: 7,
                found: 2
            })
        ));
        // The expectation check runs before depth validity: even an
        // out-of-range stored depth reports the mismatch first.
        let mut bad = dump(&d, &c);
        bad.depth = 99;
        assert!(matches!(
            restore_expecting(&bad, &c, RoundingDepth::new(17)),
            Err(RestoreError::DepthMismatch {
                expected: 17,
                found: 99
            })
        ));
    }

    #[test]
    fn bad_json_is_an_error() {
        let c = small_catalog();
        assert!(matches!(
            from_json("{not json", &c),
            Err(RestoreError::Json(_))
        ));
    }
}
