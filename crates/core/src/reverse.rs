//! Reverse lookup: resource-usage prediction (paper future work, §6).
//!
//! > "Populating the dictionary with different time intervals could enable
//! > resource usage prediction, by using the dictionary in reverse, namely
//! > by looking up applications to report potential future resource usage
//! > based on resource usage in the past."
//!
//! Given an application name (e.g. just recognized from its first two
//! minutes), enumerate its stored fingerprints and report the expected
//! per-interval means — a forecast of the rest of the execution.

use efd_telemetry::{Interval, MetricId, NodeId};
use efd_util::FxHashMap;

use crate::dictionary::EfdDictionary;

/// Expected usage of one (metric, node, interval) for an application:
/// every stored fingerprint mean (several, when runs varied).
#[derive(Debug, Clone, PartialEq)]
pub struct UsagePrediction {
    /// Metric.
    pub metric: MetricId,
    /// Node.
    pub node: NodeId,
    /// Interval.
    pub interval: Interval,
    /// Stored fingerprint means, ascending.
    pub means: Vec<f64>,
}

impl UsagePrediction {
    /// Midpoint expectation (mean of stored means).
    pub fn expected(&self) -> f64 {
        self.means.iter().sum::<f64>() / self.means.len() as f64
    }

    /// Spread of stored means (max − min): how consistent past runs were.
    pub fn spread(&self) -> f64 {
        match (self.means.first(), self.means.last()) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0.0,
        }
    }
}

/// All predictions for `app`, sorted by (interval, metric, node).
/// Filters by application *name*, aggregating over input sizes unless
/// `input` is given.
pub fn predict_usage(
    dict: &EfdDictionary,
    app: &str,
    input: Option<&str>,
) -> Vec<UsagePrediction> {
    let mut groups: FxHashMap<(MetricId, NodeId, Interval), Vec<f64>> = FxHashMap::default();
    for (fp, labels) in dict.entries() {
        let matches = labels
            .iter()
            .any(|l| l.app == app && input.is_none_or(|i| l.input == i));
        if matches {
            groups
                .entry((fp.metric, fp.node, fp.interval))
                .or_default()
                .push(fp.mean());
        }
    }
    let mut out: Vec<UsagePrediction> = groups
        .into_iter()
        .map(|((metric, node, interval), mut means)| {
            means.sort_by(|a, b| a.partial_cmp(b).unwrap());
            UsagePrediction {
                metric,
                node,
                interval,
                means,
            }
        })
        .collect();
    out.sort_by_key(|p| (p.interval, p.metric, p.node));
    out
}

/// Per-interval expected usage of one metric for `app`, averaged over
/// nodes — the "future resource usage" time line. Aggregates over all
/// input sizes; prefer [`predict_timeline_for`] when the input size was
/// predicted too (inputs can shift footprints by large factors, e.g.
/// miniAMR L).
pub fn predict_timeline(
    dict: &EfdDictionary,
    app: &str,
    metric: MetricId,
) -> Vec<(Interval, f64)> {
    predict_timeline_for(dict, app, None, metric)
}

/// Like [`predict_timeline`], restricted to one input size when given.
pub fn predict_timeline_for(
    dict: &EfdDictionary,
    app: &str,
    input: Option<&str>,
    metric: MetricId,
) -> Vec<(Interval, f64)> {
    let mut per_interval: FxHashMap<Interval, (f64, usize)> = FxHashMap::default();
    for p in predict_usage(dict, app, input) {
        if p.metric != metric {
            continue;
        }
        let e = per_interval.entry(p.interval).or_insert((0.0, 0));
        e.0 += p.expected();
        e.1 += 1;
    }
    let mut out: Vec<(Interval, f64)> = per_interval
        .into_iter()
        .map(|(iv, (sum, n))| (iv, sum / n as f64))
        .collect();
    out.sort_by_key(|(iv, _)| *iv);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{LabeledObservation, ObsPoint, Query};
    use crate::rounding::RoundingDepth;
    use efd_telemetry::AppLabel;

    const M: MetricId = MetricId(0);

    fn dict_with_timeline() -> EfdDictionary {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        let tiling = Interval::tiling(60, 240);
        // miniAMR ramps 7800 → 8000 → 8200 → 8400 on both nodes; two runs
        // with slight variation to exercise multi-mean entries.
        for (run, bump) in [(0, 0.0), (1, 60.0)] {
            let _ = run;
            let mut q = Query::default();
            for node in 0..2u16 {
                for (i, &iv) in tiling.iter().enumerate() {
                    q.points.push(ObsPoint {
                        metric: M,
                        node: NodeId(node),
                        interval: iv,
                        mean: 7800.0 + 200.0 * i as f64 + bump,
                    });
                }
            }
            d.learn(&LabeledObservation {
                label: AppLabel::new("miniAMR", "X"),
                query: q,
            });
        }
        // Another app to prove filtering.
        let mut q = Query::default();
        q.points.push(ObsPoint {
            metric: M,
            node: NodeId(0),
            interval: tiling[0],
            mean: 6000.0,
        });
        d.learn(&LabeledObservation {
            label: AppLabel::new("ft", "X"),
            query: q,
        });
        d
    }

    #[test]
    fn predicts_only_requested_app() {
        let d = dict_with_timeline();
        let preds = predict_usage(&d, "miniAMR", None);
        assert!(!preds.is_empty());
        assert!(preds.iter().all(|p| p.metric == M));
        // ft's 6000 must not leak in.
        assert!(preds.iter().all(|p| p.means.iter().all(|&m| m > 7000.0)));
    }

    #[test]
    fn timeline_is_ordered_and_ramps() {
        let d = dict_with_timeline();
        let tl = predict_timeline(&d, "miniAMR", M);
        assert_eq!(tl.len(), 4);
        for w in tl.windows(2) {
            assert!(w[0].0.end <= w[1].0.start);
            assert!(w[0].1 < w[1].1, "expected ramp: {tl:?}");
        }
        // First window expectation ≈ mean of rounded 7800-run and
        // rounded 7860-run (7800 and 7900 at depth 2).
        assert!((tl[0].1 - 7850.0).abs() < 1.0, "{tl:?}");
    }

    #[test]
    fn multi_run_entries_report_spread() {
        let d = dict_with_timeline();
        let preds = predict_usage(&d, "miniAMR", None);
        let with_spread = preds.iter().filter(|p| p.spread() > 0.0).count();
        assert!(with_spread > 0, "run variation should produce spread");
    }

    #[test]
    fn input_filter() {
        let d = dict_with_timeline();
        assert!(!predict_usage(&d, "miniAMR", Some("X")).is_empty());
        assert!(predict_usage(&d, "miniAMR", Some("Z")).is_empty());
    }

    #[test]
    fn unknown_app_predicts_nothing() {
        let d = dict_with_timeline();
        assert!(predict_usage(&d, "cryptominer", None).is_empty());
    }
}
