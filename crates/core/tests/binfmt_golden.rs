//! Golden-file tests for the EFDB binary format.
//!
//! `tests/fixtures/two_apps.efdb` is the checked-in encoding of a small
//! deterministic 2-app dictionary (the same one whose annotated hex dump
//! appears in `docs/FORMAT.md`). The byte-exact comparison pins the
//! *format*, not just the API: any change to section layout, ordering
//! rules, or the checksum breaks this test and must come with a version
//! bump and a spec update. Re-bless after an intentional change with
//!
//! ```sh
//! EFD_BLESS=1 cargo test -p efd-core --test binfmt_golden
//! ```
//!
//! The corruption tests then take the golden bytes apart: truncation,
//! flipped checksum, bad magic, future versions, invalid depth — each
//! must surface its own structured `BinFormatError` variant.

use efd_core::binfmt::{self, BinFormatError};
use efd_core::{EfdDictionary, LabeledObservation, Query, RoundingDepth};
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::{AppLabel, Interval};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/two_apps.efdb"
);

/// The fixture dictionary: SP and BT at rounding depth 2, where every key
/// collides (the paper's §5 narrative pair), 4 nodes each.
fn two_app_dict(catalog: &MetricCatalog) -> EfdDictionary {
    let metric = catalog.id("nr_mapped_vmstat").unwrap();
    let mut dict = EfdDictionary::new(RoundingDepth::new(2));
    for (app, means) in [
        ("sp", [7617.0, 7520.0, 7520.0, 7121.0]),
        ("bt", [7638.0, 7540.0, 7540.0, 7140.0]),
    ] {
        dict.learn(&LabeledObservation {
            label: AppLabel::new(app, "X"),
            query: Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means),
        });
    }
    dict
}

fn golden_bytes() -> Vec<u8> {
    let catalog = small_catalog();
    binfmt::write_dictionary(&two_app_dict(&catalog), &catalog)
}

/// Read the checked-in fixture, (re)writing it first when blessing.
fn fixture_bytes() -> Vec<u8> {
    if std::env::var_os("EFD_BLESS").is_some() {
        std::fs::write(FIXTURE, golden_bytes()).expect("bless fixture");
    }
    std::fs::read(FIXTURE).expect(
        "fixture missing — generate with \
         EFD_BLESS=1 cargo test -p efd-core --test binfmt_golden",
    )
}

#[test]
fn writer_is_byte_exact_against_the_checked_in_fixture() {
    let bytes = golden_bytes();
    let fixture = fixture_bytes();
    assert_eq!(
        bytes, fixture,
        "EFDB encoding changed: if intentional, bump the format version, \
         update docs/FORMAT.md, and re-bless the fixture"
    );
}

#[test]
fn fixture_decodes_to_the_collision_dictionary() {
    let catalog = small_catalog();
    let efdb = binfmt::read(&fixture_bytes()).unwrap();
    assert_eq!(efdb.depth().get(), 2);
    assert_eq!(efdb.apps(), ["sp".to_string(), "bt".to_string()]);
    assert_eq!(efdb.len(), 4, "sp/bt collide on all 4 per-node keys");

    let dict = efdb.to_dictionary(&catalog).unwrap();
    let metric = catalog.id("nr_mapped_vmstat").unwrap();
    let q = Query::from_node_means(
        metric,
        Interval::PAPER_DEFAULT,
        &[7601.0, 7512.0, 7533.0, 7098.0],
    );
    let r = dict.recognize(&q);
    assert_eq!(
        r.verdict,
        efd_core::Verdict::Ambiguous(vec!["sp".into(), "bt".into()]),
        "tie array in first-learned order survives the binary round trip"
    );
    assert_eq!(r.best(), Some("bt"));
}

#[test]
fn truncated_fixture_reports_truncation_not_garbage() {
    let bytes = golden_bytes();
    // A handful of interesting cut points: inside the magic, the header,
    // each section, and just before the checksum trailer.
    for len in [0, 2, 10, 47, 60, bytes.len() / 2, bytes.len() - 9, bytes.len() - 1] {
        let err = binfmt::read(&bytes[..len]).unwrap_err();
        assert!(
            matches!(
                err,
                BinFormatError::Truncated { .. } | BinFormatError::Layout { .. }
            ),
            "prefix of {len} bytes: unexpected error {err:?}"
        );
    }
}

#[test]
fn flipped_checksum_bit_is_detected() {
    let mut bytes = golden_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    assert!(matches!(
        binfmt::read(&bytes).unwrap_err(),
        BinFormatError::ChecksumMismatch { .. }
    ));
}

#[test]
fn flipped_payload_bit_is_detected() {
    let mut bytes = golden_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    assert!(matches!(
        binfmt::read(&bytes).unwrap_err(),
        BinFormatError::ChecksumMismatch { .. }
    ));
}

#[test]
fn bad_magic_is_detected() {
    let mut bytes = golden_bytes();
    bytes[..4].copy_from_slice(b"JSON");
    assert_eq!(
        binfmt::read(&bytes).unwrap_err(),
        BinFormatError::BadMagic { found: *b"JSON" }
    );
}

#[test]
fn future_versions_are_rejected_per_policy() {
    // Same-major / newer-minor and different-major both refuse to load;
    // the error carries the versions so operators can tell which side to
    // upgrade.
    let bytes = golden_bytes();
    let mut newer_minor = bytes.clone();
    newer_minor[6] = binfmt::VERSION_MINOR as u8 + 1;
    assert!(matches!(
        binfmt::read(&newer_minor).unwrap_err(),
        BinFormatError::UnsupportedVersion { .. }
    ));
    let mut other_major = bytes;
    other_major[4] = binfmt::VERSION_MAJOR as u8 + 1;
    assert!(matches!(
        binfmt::read(&other_major).unwrap_err(),
        BinFormatError::UnsupportedVersion { .. }
    ));
}

#[test]
fn unsorted_string_table_is_detected() {
    // The fixture's string table is ["X", "bt", "ft", "nr_mapped_vmstat",
    // "sp"]. Rewrite the first string's one byte 'X' -> 'z' (offset 56:
    // strings section at 48, count u32, len u32, then the byte) so "bt"
    // at index 1 is no longer greater than its predecessor, and re-stamp
    // the checksum so validation reaches the ordering check.
    let mut bytes = golden_bytes();
    assert_eq!(bytes[56], b'X', "fixture layout changed; update this test");
    bytes[56] = b'z';
    let body = bytes.len() - 8;
    let sum = efd_util::hash::hash_bytes(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    assert_eq!(
        binfmt::read(&bytes).unwrap_err(),
        BinFormatError::UnsortedStrings { index: 1 }
    );
    // The zero-copy entry point refuses the same bytes: a buffer that
    // fails `check` can never be served.
    assert_eq!(
        binfmt::check(&bytes).unwrap_err(),
        BinFormatError::UnsortedStrings { index: 1 }
    );
}

#[test]
fn invalid_depth_is_detected() {
    let mut bytes = golden_bytes();
    bytes[8] = 0; // depth byte; re-stamp the checksum so validation gets there
    let body = bytes.len() - 8;
    let sum = efd_util::hash::hash_bytes(&bytes[..body]);
    let trailer = body;
    bytes[trailer..].copy_from_slice(&sum.to_le_bytes());
    assert_eq!(
        binfmt::read(&bytes).unwrap_err(),
        BinFormatError::InvalidDepth(0)
    );
}
