//! Property-based tests for the dictionary's core invariants.

use proptest::prelude::*;

use efd_core::dictionary::{EfdDictionary, Verdict};
use efd_core::fingerprint::Fingerprint;
use efd_core::maintenance;
use efd_core::observation::{LabeledObservation, ObsPoint, Query};
use efd_core::rounding::{round_to_depth, RoundingDepth};
use efd_core::serialize;
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};

const W: Interval = Interval::PAPER_DEFAULT;

/// Strategy: a batch of labeled observations over a few apps/nodes.
fn arb_observations() -> impl Strategy<Value = Vec<LabeledObservation>> {
    let apps = prop::sample::select(vec!["ft", "sp", "bt", "miniAMR", "kripke"]);
    let obs = (apps, 1u16..4, -1e6f64..1e6).prop_map(|(app, nodes, base)| {
        let points = (0..nodes)
            .map(|n| ObsPoint {
                metric: MetricId(0),
                node: NodeId(n),
                interval: W,
                mean: base + n as f64,
            })
            .collect();
        LabeledObservation {
            label: AppLabel::new(app, "X"),
            query: Query { points },
        }
    });
    prop::collection::vec(obs, 1..40)
}

proptest! {
    /// Anything learned is recognized when queried with its exact means
    /// (app-level: the verdict's array contains the app).
    #[test]
    fn learned_observations_are_recognized(
        observations in arb_observations(),
        depth in 1u8..6,
    ) {
        let mut dict = EfdDictionary::new(RoundingDepth::new(depth));
        dict.learn_all(&observations);
        for obs in &observations {
            let r = dict.recognize(&obs.query);
            let hit = match &r.verdict {
                Verdict::Recognized(a) => a == &obs.label.app,
                Verdict::Ambiguous(apps) => apps.iter().any(|a| a == &obs.label.app),
                Verdict::Unknown => false,
                // Verdict is #[non_exhaustive].
                _ => false,
            };
            prop_assert!(hit, "lost {} at depth {depth}: {:?}", obs.label, r.verdict);
        }
    }

    /// Learning is idempotent: re-learning the same batch changes nothing.
    #[test]
    fn learning_is_idempotent(observations in arb_observations()) {
        let mut once = EfdDictionary::new(RoundingDepth::new(3));
        once.learn_all(&observations);
        let mut twice = EfdDictionary::new(RoundingDepth::new(3));
        twice.learn_all(&observations);
        twice.learn_all(&observations);
        prop_assert_eq!(once.len(), twice.len());
        prop_assert_eq!(once.stats(), twice.stats());
    }

    /// Dump → restore preserves every verdict.
    #[test]
    fn dump_restore_preserves_recognition(observations in arb_observations()) {
        let catalog = small_catalog();
        let mut dict = EfdDictionary::new(RoundingDepth::new(2));
        dict.learn_all(&observations);
        let json = serialize::to_json(&dict, &catalog);
        let back = serialize::from_json(&json, &catalog).unwrap();
        prop_assert_eq!(back.len(), dict.len());
        for obs in &observations {
            prop_assert_eq!(
                dict.recognize(&obs.query).verdict,
                back.recognize(&obs.query).verdict
            );
        }
    }

    /// merge(A, B) recognizes everything A or B recognized (app contained
    /// in the verdict array).
    #[test]
    fn merge_is_a_union(
        a_obs in arb_observations(),
        b_obs in arb_observations(),
    ) {
        let mut a = EfdDictionary::new(RoundingDepth::new(3));
        a.learn_all(&a_obs);
        let mut b = EfdDictionary::new(RoundingDepth::new(3));
        b.learn_all(&b_obs);
        maintenance::merge(&mut a, &b).unwrap();
        for obs in a_obs.iter().chain(&b_obs) {
            let r = a.recognize(&obs.query);
            let hit = match &r.verdict {
                Verdict::Recognized(x) => x == &obs.label.app,
                Verdict::Ambiguous(apps) => apps.iter().any(|x| x == &obs.label.app),
                Verdict::Unknown => false,
                // Verdict is #[non_exhaustive].
                _ => false,
            };
            prop_assert!(hit, "merge lost {}", obs.label);
        }
    }

    /// After forget_app, the app never appears in any verdict.
    #[test]
    fn forget_app_is_complete(observations in arb_observations()) {
        let mut dict = EfdDictionary::new(RoundingDepth::new(3));
        dict.learn_all(&observations);
        maintenance::forget_app(&mut dict, "sp");
        for obs in &observations {
            let r = dict.recognize(&obs.query);
            let mentions_sp = match &r.verdict {
                Verdict::Recognized(a) => a == "sp",
                Verdict::Ambiguous(apps) => apps.iter().any(|a| a == "sp"),
                Verdict::Unknown => false,
                // Verdict is #[non_exhaustive].
                _ => false,
            };
            prop_assert!(!mentions_sp);
            prop_assert!(r.app_votes.iter().all(|(a, _)| a != "sp"));
        }
    }

    /// Fingerprint byte packing round-trips.
    #[test]
    fn fingerprint_pack_roundtrip(
        metric in 0u32..1000,
        node in 0u16..64,
        start in 0u32..10_000,
        len in 1u32..10_000,
        mean in -1e12f64..1e12,
    ) {
        let fp = Fingerprint::from_rounded(
            MetricId(metric),
            NodeId(node),
            Interval::new(start, start + len),
            mean,
        );
        prop_assert_eq!(Fingerprint::unpack(&fp.pack()), fp);
    }

    /// Rounding at the dictionary's depth is transparent: inserting a raw
    /// mean and querying any value in the same decimal bucket matches.
    #[test]
    fn bucket_neighbors_collide(
        mean in 1.0f64..1e9,
        depth in 1u8..6,
        wiggle in -0.49f64..0.49,
    ) {
        let rounded = round_to_depth(mean, depth);
        prop_assume!(rounded > 0.0);
        // Grain of the bucket the ROUNDED value lives in.
        let magnitude = rounded.abs().log10().floor() as i32;
        let grain = 10f64.powi(magnitude - depth as i32 + 1);
        let neighbor = rounded + wiggle * grain;
        prop_assume!(neighbor > 0.0);
        // Guard against magnitude-boundary flips (e.g. 999.6 vs 1000).
        prop_assume!(round_to_depth(neighbor, depth) == rounded);

        let mut dict = EfdDictionary::new(RoundingDepth::new(depth));
        dict.insert_raw(MetricId(0), NodeId(0), W, mean, &AppLabel::new("ft", "X"));
        let found = dict.lookup_raw(MetricId(0), NodeId(0), W, neighbor);
        prop_assert!(found.is_some(), "{neighbor} missed bucket of {mean} (depth {depth})");
    }

    /// A dictionary diffed against itself is always semantically empty,
    /// with zero verdict divergence, at any depth and under any sample
    /// seed — the `efd diff A A` exit-0 contract.
    #[test]
    fn self_diff_is_empty(
        observations in arb_observations(),
        depth in 1u8..6,
        seed in 0u64..u64::MAX,
    ) {
        let mut dict = EfdDictionary::new(RoundingDepth::new(depth));
        dict.learn_all(&observations);
        let opts = efd_core::diff::DiffOptions { seed, ..Default::default() };
        let r = efd_core::diff::diff(&dict, &dict, &small_catalog(), &opts);
        prop_assert!(r.semantically_equal(), "{r:?}");
        prop_assert_eq!(r.added + r.removed + r.relabelled, 0);
        prop_assert_eq!(r.divergence.diverged, 0, "self-diff verdicts must agree");
        prop_assert_eq!(r.keys_a, r.keys_b);
        for c in &r.coverage {
            prop_assert_eq!(c.keys_a, c.keys_b, "coverage of {} must match", c.app);
        }
    }

    /// Vote counts never exceed matched points, and matched points never
    /// exceed the query size.
    #[test]
    fn vote_accounting(observations in arb_observations()) {
        let mut dict = EfdDictionary::new(RoundingDepth::new(3));
        dict.learn_all(&observations);
        for obs in &observations {
            let r = dict.recognize(&obs.query);
            prop_assert!(r.matched_points <= r.total_points);
            for (_, votes) in &r.app_votes {
                prop_assert!(*votes as usize <= r.matched_points);
            }
        }
    }
}
