//! Engine conformance: every `Recognize` backend in the workspace is
//! answer-equivalent to the single-threaded [`EfdDictionary`] oracle on
//! one shared learned dataset.
//!
//! The suite is macro-instantiated, one test per backend, in two tiers:
//!
//! * `exact:` — the full [`Recognition`] equals
//!   `oracle.recognize(q).normalized()` on every query (dictionary-family
//!   backends: core, combo, snapshot, sharded, online session, batch
//!   front end, boxed trait objects);
//! * `verdict:` — the scored answer ([`Recognition::best`]) matches on
//!   cleanly-separable queries (the eval crate's ml-classifier backends,
//!   whose vote *counts* legitimately differ from dictionary votes).
//!
//! Each instantiation also cross-checks the trait's four entry points
//! against each other: `recognize`, `recognize_into` (scratch reuse),
//! `recognize_batch`, and `recognize_batch_parallel` must agree.

use std::sync::Arc;

use efd_core::engine::{Learn, ParallelRecognize, Recognize, VoteScratch};
use efd_core::multi::ComboDictionary;
use efd_core::{binfmt, EfdDictionary, LabeledObservation, Query, RoundingDepth};
use efd_eval::engine::MlBackend;
use efd_ml::taxonomist::TaxonomistConfig;
use efd_serve::{
    BatchRecognizer, ComboSnapshot, EfdbSnapshot, OnlineSession, ShardedDictionary, Snapshot,
};
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};

const M: MetricId = MetricId(0);
const W: Interval = Interval::PAPER_DEFAULT;
const DEPTH: u8 = 2;

fn depth() -> RoundingDepth {
    RoundingDepth::new(DEPTH)
}

fn obs(app: &str, input: &str, means: [f64; 4]) -> LabeledObservation {
    LabeledObservation {
        label: AppLabel::new(app, input),
        query: Query::from_node_means(M, W, &means),
    }
}

/// The shared learned dataset: three cleanly-separated applications, one
/// input-dependent app, and the paper's SP/BT-style collision pair.
fn observations() -> Vec<LabeledObservation> {
    vec![
        obs("ft", "X", [6020.0, 6020.0, 6020.0, 6020.0]),
        obs("ft", "Y", [6023.0, 6019.0, 6021.0, 6018.0]),
        obs("cg", "X", [8110.0, 8105.0, 8120.0, 8093.0]),
        obs("lu", "X", [4320.0, 4310.0, 4305.0, 4330.0]),
        obs("sp", "X", [7617.0, 7520.0, 7520.0, 7121.0]),
        obs("bt", "X", [7638.0, 7540.0, 7540.0, 7140.0]),
        // Spread within the 11000 rounding bucket: identical keys for the
        // dictionary family, non-degenerate variance for the ml family.
        obs("miniAMR", "Z", [10980.0, 10964.0, 11012.0, 10991.0]),
    ]
}

/// The single-threaded oracle every backend is checked against.
fn oracle(observations: &[LabeledObservation]) -> EfdDictionary {
    let mut d = EfdDictionary::new(depth());
    d.learn_all(observations);
    d
}

/// All-finite queries for exact-equality backends: clean matches, the
/// SP/BT tie, an input-size prediction, a partial match, and a never-seen
/// level (the Unknown safeguard).
fn exact_queries() -> Vec<Query> {
    vec![
        Query::from_node_means(M, W, &[6031.0, 5988.0, 6007.0, 6044.0]),
        Query::from_node_means(M, W, &[8101.0, 8140.0, 8066.0, 8090.0]),
        Query::from_node_means(M, W, &[4311.0, 4299.0, 4302.0, 4344.0]),
        Query::from_node_means(M, W, &[7601.0, 7512.0, 7533.0, 7098.0]),
        Query::from_node_means(M, W, &[10951.0, 11020.0, 10990.0, 11043.0]),
        Query::from_node_means(M, W, &[6000.0, 6000.0, 6000.0, 11000.0]),
        Query::from_node_means(M, W, &[1.0, 2.0, 3.0, 4.0]),
    ]
}

/// Queries near well-separated learned levels only — what classifier
/// backends (no exact-match keys, no tie semantics) can be scored on.
fn verdict_queries() -> Vec<(Query, &'static str)> {
    vec![
        (Query::from_node_means(M, W, &[6015.0; 4]), "ft"),
        (Query::from_node_means(M, W, &[8104.0; 4]), "cg"),
        (Query::from_node_means(M, W, &[4317.0; 4]), "lu"),
        (Query::from_node_means(M, W, &[10990.0; 4]), "miniAMR"),
    ]
}

/// One backend, four trait entry points, every query: all equal to the
/// normalized oracle.
fn assert_exact<R: Recognize + Sync>(backend: &R, label: &str) {
    let oracle = oracle(&observations());
    let queries = exact_queries();
    let mut scratch = VoteScratch::default();
    for q in &queries {
        let expected = oracle.recognize(q).normalized();
        assert_eq!(Recognize::recognize(backend, q), expected, "{label}: recognize");
        assert_eq!(
            backend.recognize_into(q, &mut scratch),
            expected,
            "{label}: recognize_into (scratch reuse)"
        );
    }
    let batch = Recognize::recognize_batch(backend, &queries);
    let parallel = backend.recognize_batch_parallel(&queries);
    for (i, q) in queries.iter().enumerate() {
        let expected = oracle.recognize(q).normalized();
        assert_eq!(batch[i], expected, "{label}: recognize_batch[{i}]");
        assert_eq!(parallel[i], expected, "{label}: recognize_batch_parallel[{i}]");
    }
}

/// Scored-verdict agreement with the oracle on separable queries.
fn assert_verdicts<R: Recognize + Sync>(backend: &R, label: &str) {
    let oracle = oracle(&observations());
    for (q, want) in verdict_queries() {
        let expected = oracle.recognize(&q).normalized();
        assert_eq!(expected.best(), Some(want), "oracle sanity for {want}");
        let got = Recognize::recognize(backend, &q);
        assert_eq!(got.best(), Some(want), "{label}: best() on {want}");
        assert_eq!(got.verdict, expected.verdict, "{label}: verdict on {want}");
        assert_eq!(got.total_points, expected.total_points, "{label}: totals");
    }
}

/// Instantiate one conformance test per backend. The builder expression
/// receives the shared observations and returns the ready backend.
macro_rules! conformance {
    (exact: $name:ident, $build:expr) => {
        #[test]
        fn $name() {
            let observations = observations();
            #[allow(clippy::redundant_closure_call)]
            let backend = ($build)(&observations);
            assert_exact(&backend, stringify!($name));
        }
    };
    (verdict: $name:ident, $build:expr) => {
        #[test]
        fn $name() {
            let observations = observations();
            #[allow(clippy::redundant_closure_call)]
            let backend = ($build)(&observations);
            assert_verdicts(&backend, stringify!($name));
        }
    };
}

// ---------------------------------------------------------------------
// The six backends (+ composition forms), all against the one oracle.
// ---------------------------------------------------------------------

conformance!(exact: efd_dictionary, |observations: &[LabeledObservation]| {
    let mut d = EfdDictionary::new(depth());
    Learn::learn_all(&mut d, observations);
    d
});

conformance!(exact: combo_dictionary, |observations: &[LabeledObservation]| {
    // Single-metric conjunctive keys degenerate to the base dictionary's
    // semantics, so the combo backend is exactly oracle-equivalent here.
    let mut c = ComboDictionary::new(vec![M], depth());
    Learn::learn_all(&mut c, observations);
    c
});

conformance!(exact: snapshot_single_shard, |observations: &[LabeledObservation]| {
    Snapshot::freeze(&oracle(observations), 1)
});

conformance!(exact: snapshot_sharded, |observations: &[LabeledObservation]| {
    Snapshot::freeze(&oracle(observations), 16)
});

conformance!(exact: sharded_dictionary_learned, |observations: &[LabeledObservation]| {
    let mut s = ShardedDictionary::new(depth(), 8);
    Learn::learn_all(&mut s, observations);
    s
});

conformance!(exact: sharded_dictionary_from_parts, |observations: &[LabeledObservation]| {
    ShardedDictionary::from_parts(oracle(observations).to_parts(), 4)
});

conformance!(exact: combo_snapshot, |observations: &[LabeledObservation]| {
    let mut c = ComboDictionary::new(vec![M], depth());
    c.learn_all(observations);
    ComboSnapshot::freeze(c)
});

conformance!(exact: online_session, |observations: &[LabeledObservation]| {
    // Ad-hoc queries answer against the session's current publication.
    let snap = Arc::new(Snapshot::freeze(&oracle(observations), 4));
    OnlineSession::new(snap, &[M], &[NodeId(0)], vec![W])
});

conformance!(exact: efdb_snapshot_zero_copy, |observations: &[LabeledObservation]| {
    // Learned state -> canonical EFDB bytes -> served in place: the
    // zero-copy store answers byte-for-byte like the oracle.
    let catalog = small_catalog();
    let bytes = binfmt::write(&oracle(observations).to_parts(), &catalog);
    EfdbSnapshot::load(bytes, &catalog).expect("canonical bytes always check")
});

conformance!(exact: efdb_snapshot_behind_batch_front_end, |observations: &[LabeledObservation]| {
    let catalog = small_catalog();
    let bytes = binfmt::write(&oracle(observations).to_parts(), &catalog);
    BatchRecognizer::new(Arc::new(
        EfdbSnapshot::load(bytes, &catalog).expect("canonical bytes always check"),
    ))
});

conformance!(exact: batch_recognizer_front_end, |observations: &[LabeledObservation]| {
    BatchRecognizer::new(Arc::new(Snapshot::freeze(&oracle(observations), 8)))
});

conformance!(exact: boxed_dyn_recognize, |observations: &[LabeledObservation]| {
    let backend: Box<dyn Recognize + Send + Sync> =
        Box::new(Snapshot::freeze(&oracle(observations), 8));
    backend
});

conformance!(exact: arc_dyn_recognize, |observations: &[LabeledObservation]| {
    let backend: Arc<dyn Recognize + Send + Sync> =
        Arc::new(ShardedDictionary::from_parts(oracle(observations).to_parts(), 8));
    backend
});

// ---------------------------------------------------------------------
// The eval crate's classifier adapter: ml families under the same API.
// ---------------------------------------------------------------------

conformance!(verdict: ml_backend_knn, |observations: &[LabeledObservation]| {
    let mut b = MlBackend::knn(3, 0.5);
    b.learn_all(observations);
    b
});

conformance!(verdict: ml_backend_gaussian_nb, |observations: &[LabeledObservation]| {
    let mut b = MlBackend::gaussian_nb(0.5);
    b.learn_all(observations);
    b
});

conformance!(verdict: ml_backend_forest, |observations: &[LabeledObservation]| {
    let mut b = MlBackend::forest(TaxonomistConfig {
        n_trees: 15,
        ..Default::default()
    });
    b.learn_all(observations);
    b
});

// ---------------------------------------------------------------------
// Object safety: both traits must be usable as trait objects.
// ---------------------------------------------------------------------

#[test]
fn traits_are_object_safe() {
    // Learn through `&mut dyn Learn`…
    let mut dict = EfdDictionary::new(depth());
    {
        let learner: &mut dyn Learn = &mut dict;
        learner.learn_all(&observations());
    }
    // …then recognize through `Box<dyn Recognize>` (no auto-trait bounds
    // required for object safety itself).
    let plain: Box<dyn Recognize> = Box::new(dict.clone());
    let expected = oracle(&observations()).recognize(&exact_queries()[0]).normalized();
    assert_eq!(plain.recognize(&exact_queries()[0]), expected);

    // The Send + Sync flavor additionally gets the parallel batch path.
    let shared: Box<dyn Recognize + Send + Sync> = Box::new(dict);
    let queries = exact_queries();
    let parallel = shared.recognize_batch_parallel(&queries);
    assert_eq!(parallel[0], expected);

    // A heterogeneous backend list — the point of the object-safe design.
    let catalog = small_catalog();
    let backends: Vec<Box<dyn Recognize + Send + Sync>> = vec![
        Box::new(oracle(&observations())),
        Box::new(Snapshot::freeze(&oracle(&observations()), 4)),
        Box::new(ShardedDictionary::from_parts(
            oracle(&observations()).to_parts(),
            2,
        )),
        Box::new(
            EfdbSnapshot::load(
                binfmt::write(&oracle(&observations()).to_parts(), &catalog),
                &catalog,
            )
            .expect("canonical bytes always check"),
        ),
    ];
    for (i, b) in backends.iter().enumerate() {
        for q in &queries {
            assert_eq!(
                b.recognize(q),
                oracle(&observations()).recognize(q).normalized(),
                "backend #{i}"
            );
        }
    }
}

/// `Recognition::normalized` really is the equivalence the suite is
/// "modulo": learn-order permutations normalize to the same answers.
#[test]
fn normalized_is_learn_order_independent() {
    let mut reversed: Vec<LabeledObservation> = observations();
    reversed.reverse();
    let a = oracle(&observations());
    let mut b = EfdDictionary::new(depth());
    b.learn_all(&reversed);
    for q in exact_queries() {
        assert_eq!(a.recognize(&q).normalized(), b.recognize(&q).normalized());
        assert_eq!(
            Recognize::recognize(&a, &q),
            Recognize::recognize(&b, &q),
            "trait path is normalized on both"
        );
    }
}
