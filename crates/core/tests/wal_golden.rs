//! Golden-file tests for the WAL log format.
//!
//! `tests/fixtures/two_apps.wal` is the checked-in log of a small
//! deterministic operation sequence (the same one whose annotated hex
//! dump appears in `docs/FORMAT.md`): learn SP, learn BT, forget SP's
//! label. The byte-exact comparison pins the *format* — header layout,
//! record framing, payload encoding, checksum — and any intentional
//! change must come with a version bump, a spec update, and a re-bless:
//!
//! ```sh
//! EFD_BLESS=1 cargo test -p efd-core --test wal_golden
//! ```
//!
//! The corruption matrix then takes the golden bytes apart the way a
//! failing disk would: torn tails, flipped CRC bytes, zero-length
//! records, duplicated records, empty files. Each case asserts both the
//! structured `WalError` variant and the recovered-prefix length — the
//! truncate-and-warn recovery contract is *exactly* "keep every record
//! before the fault, report the fault and its byte offset".

use efd_core::wal::{
    self, encode_log, frame_record, read_log, LearnRecord, WalError, WalRecord,
    RECORD_FRAME_LEN, WAL_HEADER_LEN,
};
use efd_core::{EfdDictionary, LabeledObservation, Query, RoundingDepth};
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::{AppLabel, Interval};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/two_apps.wal");

fn obs(catalog: &MetricCatalog, app: &str, means: &[f64]) -> LabeledObservation {
    let metric = catalog.id("nr_mapped_vmstat").unwrap();
    LabeledObservation {
        label: AppLabel::new(app, "X"),
        query: Query::from_node_means(metric, Interval::PAPER_DEFAULT, means),
    }
}

/// The fixture operation sequence: the binfmt golden pair (SP and BT at
/// depth 2, every key colliding), plus one forget so all three record
/// kinds are pinned.
fn golden_records(catalog: &MetricCatalog) -> Vec<WalRecord> {
    vec![
        WalRecord::Learn(LearnRecord::from_observation(
            &obs(catalog, "sp", &[7617.0, 7520.0, 7520.0, 7121.0]),
            catalog,
        )),
        WalRecord::Learn(LearnRecord::from_observation(
            &obs(catalog, "bt", &[7638.0, 7540.0, 7540.0, 7140.0]),
            catalog,
        )),
        WalRecord::ForgetLabel {
            app: "sp".into(),
            input: "X".into(),
        },
    ]
}

fn golden_bytes() -> Vec<u8> {
    encode_log(RoundingDepth::new(2), 0, &golden_records(&small_catalog()))
}

fn fixture_bytes() -> Vec<u8> {
    if std::env::var_os("EFD_BLESS").is_some() {
        std::fs::write(FIXTURE, golden_bytes()).expect("bless fixture");
    }
    std::fs::read(FIXTURE).expect(
        "fixture missing — generate with \
         EFD_BLESS=1 cargo test -p efd-core --test wal_golden",
    )
}

#[test]
fn writer_is_byte_exact_against_the_checked_in_fixture() {
    assert_eq!(
        golden_bytes(),
        fixture_bytes(),
        "WAL encoding changed: if intentional, bump the format version, \
         update docs/FORMAT.md, and re-bless the fixture"
    );
}

#[test]
fn fixture_replays_to_the_post_forget_dictionary() {
    let catalog = small_catalog();
    let replay = read_log(&fixture_bytes()).unwrap();
    assert_eq!(replay.depth.get(), 2);
    assert_eq!(replay.base_segments, 0);
    assert_eq!(replay.records, golden_records(&catalog));
    assert!(replay.fault.is_none());

    let mut dict = EfdDictionary::new(replay.depth);
    for (i, rec) in replay.records.iter().enumerate() {
        wal::apply_record(&mut dict, rec, &catalog, i).unwrap();
    }
    // SP was learned then forgotten: only BT answers.
    let metric = catalog.id("nr_mapped_vmstat").unwrap();
    let q = Query::from_node_means(
        metric,
        Interval::PAPER_DEFAULT,
        &[7601.0, 7512.0, 7533.0, 7098.0],
    );
    assert_eq!(dict.recognize(&q).best(), Some("bt"));
    assert_eq!(dict.app_names(), ["bt".to_string()]);
}

/// Frame offsets of each record in the golden log, plus the total length.
fn record_offsets() -> (Vec<usize>, usize) {
    let catalog = small_catalog();
    let mut offsets = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    for rec in golden_records(&catalog) {
        offsets.push(pos);
        pos += frame_record(&rec).len();
    }
    (offsets, pos)
}

#[test]
fn torn_tail_every_cut_point_recovers_the_preceding_records() {
    // Sweep EVERY possible truncation length past the header: recovery
    // must always keep exactly the records whose frames fit, and report
    // the torn remainder.
    let bytes = fixture_bytes();
    let (offsets, total) = record_offsets();
    assert_eq!(total, bytes.len());
    // Frame boundaries: a record is complete iff the next boundary fits.
    let mut bounds = offsets.clone();
    bounds.push(total);
    for cut in WAL_HEADER_LEN..total {
        let replay = read_log(&bytes[..cut]).unwrap();
        // The fault anchors at the start of the first incomplete frame —
        // the largest boundary ≤ cut.
        let anchor = *bounds.iter().rev().find(|&&b| b <= cut).unwrap();
        let complete = bounds.iter().position(|&b| b == anchor).unwrap();
        assert_eq!(
            replay.records.len(),
            complete,
            "cut at {cut}: wrong recovered-prefix record count"
        );
        assert_eq!(replay.valid_len, anchor as u64, "cut at {cut}");
        if cut == anchor {
            // The cut landed exactly on a frame boundary: a perfectly
            // truncated log, indistinguishable from a clean shutdown.
            assert!(replay.fault.is_none(), "cut at {cut}: boundary is clean");
        } else {
            match replay.fault {
                Some(WalError::TornRecord { offset, .. }) => {
                    assert_eq!(offset, anchor as u64, "cut at {cut}")
                }
                ref other => panic!("cut at {cut}: expected TornRecord, got {other:?}"),
            }
        }
    }
}

#[test]
fn flipped_crc_byte_stops_at_the_last_valid_record() {
    let bytes = fixture_bytes();
    let (offsets, _) = record_offsets();
    // Flip one byte of record #1's stored CRC (frame bytes 4..12).
    let mut corrupt = bytes.clone();
    let at = offsets[1] + 4;
    corrupt[at] ^= 0x01;
    let replay = read_log(&corrupt).unwrap();
    assert_eq!(replay.records.len(), 1, "only record #0 survives");
    assert_eq!(replay.valid_len, offsets[1] as u64);
    match replay.fault {
        Some(WalError::CorruptRecord { offset, stored, computed }) => {
            assert_eq!(offset, offsets[1] as u64);
            assert_ne!(stored, computed);
        }
        ref other => panic!("expected CorruptRecord, got {other:?}"),
    }

    // Flipping a payload byte instead reports the same variant (the CRC
    // no longer matches the payload) at the same frame offset.
    let mut corrupt = bytes;
    corrupt[offsets[1] + RECORD_FRAME_LEN + 2] ^= 0x40;
    let replay = read_log(&corrupt).unwrap();
    assert_eq!(replay.records.len(), 1);
    assert!(matches!(
        replay.fault,
        Some(WalError::CorruptRecord { offset, .. }) if offset == offsets[1] as u64
    ));
}

#[test]
fn zero_length_record_is_its_own_fault() {
    // Zero-filled tail space (preallocation) must not read as data: a
    // zero `len` word is reported as ZeroLengthRecord at its offset.
    let mut bytes = fixture_bytes();
    let end = bytes.len();
    bytes.extend_from_slice(&[0u8; 16]);
    let replay = read_log(&bytes).unwrap();
    assert_eq!(replay.records.len(), 3, "all real records kept");
    assert_eq!(replay.valid_len, end as u64);
    assert_eq!(
        replay.fault,
        Some(WalError::ZeroLengthRecord { offset: end as u64 })
    );
}

#[test]
fn duplicated_record_replays_idempotently() {
    // A record duplicated by a retried write is *valid* framing — and
    // harmless: replay converges to the same dictionary because learns
    // dedup and forgets re-remove.
    let catalog = small_catalog();
    let records = golden_records(&catalog);
    let mut doubled = Vec::new();
    for r in &records {
        doubled.push(r.clone());
        doubled.push(r.clone());
    }
    let bytes = encode_log(RoundingDepth::new(2), 0, &doubled);
    let replay = read_log(&bytes).unwrap();
    assert_eq!(replay.records.len(), 6);
    assert!(replay.fault.is_none());

    let mut once = EfdDictionary::new(RoundingDepth::new(2));
    for (i, r) in records.iter().enumerate() {
        wal::apply_record(&mut once, r, &catalog, i).unwrap();
    }
    let mut twice = EfdDictionary::new(RoundingDepth::new(2));
    for (i, r) in replay.records.iter().enumerate() {
        wal::apply_record(&mut twice, r, &catalog, i).unwrap();
    }
    assert_eq!(once.len(), twice.len());
    let metric = catalog.id("nr_mapped_vmstat").unwrap();
    let q = Query::from_node_means(
        metric,
        Interval::PAPER_DEFAULT,
        &[7601.0, 7512.0, 7533.0, 7098.0],
    );
    assert_eq!(once.recognize(&q), twice.recognize(&q));
}

#[test]
fn empty_file_and_broken_headers_are_hard_errors() {
    // An empty file is NOT an empty log (that has a header): it is a
    // truncated header, a hard error — there is no valid prefix to keep.
    assert_eq!(
        read_log(&[]).unwrap_err(),
        WalError::Truncated {
            what: "wal header",
            need: WAL_HEADER_LEN,
            have: 0
        }
    );
    let bytes = fixture_bytes();
    for len in 1..WAL_HEADER_LEN {
        assert!(
            matches!(
                read_log(&bytes[..len]).unwrap_err(),
                WalError::Truncated { what: "wal header", .. }
            ),
            "header prefix of {len} bytes"
        );
    }

    let mut bad_magic = bytes.clone();
    bad_magic[..4].copy_from_slice(b"EFDB"); // right family, wrong file kind
    assert_eq!(
        read_log(&bad_magic).unwrap_err(),
        WalError::BadMagic { found: *b"EFDB" }
    );

    let mut newer_minor = bytes.clone();
    newer_minor[6] = wal::WAL_VERSION_MINOR as u8 + 1;
    assert!(matches!(
        read_log(&newer_minor).unwrap_err(),
        WalError::UnsupportedVersion { .. }
    ));

    let mut bad_depth = bytes;
    bad_depth[8] = 99;
    assert_eq!(read_log(&bad_depth).unwrap_err(), WalError::InvalidDepth(99));
}

#[test]
fn unknown_record_kind_is_a_bad_record_at_its_offset() {
    let catalog = small_catalog();
    let mut records = golden_records(&catalog);
    records.truncate(1);
    let mut bytes = encode_log(RoundingDepth::new(2), 0, &records);
    let offset = bytes.len();
    // Append a validly-framed record with an unknown kind byte.
    let payload = [0xEEu8, 0x00];
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&efd_util::hash::hash_bytes(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let replay = read_log(&bytes).unwrap();
    assert_eq!(replay.records.len(), 1);
    assert_eq!(replay.valid_len, offset as u64);
    assert_eq!(
        replay.fault,
        Some(WalError::BadRecord {
            offset: offset as u64,
            what: "unknown record kind"
        })
    );
}
