//! Golden-file tests for `efd diff`.
//!
//! `tests/fixtures/` holds two small committed dictionaries (`base` /
//! `next`) engineered to exercise every change class the differ
//! reports — added keys, removed keys, relabelled keys, per-app
//! coverage deltas, verdict divergence — plus the blessed table and
//! JSON reports the binary must reproduce byte-for-byte. Re-bless after
//! an intentional report-format change with
//!
//! ```sh
//! EFD_BLESS=1 cargo test -p efd-cli --test diff_golden
//! ```
//!
//! The exit-code contract is pinned alongside: 0 = semantically equal
//! (including byte-different encodings of the same dictionary),
//! 3 = semantically different, 1 = error.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::OnceLock;

use efd_core::{binfmt, serialize, EfdDictionary, LabeledObservation, Query, RoundingDepth};
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::{AppLabel, Interval};

const FIXTURES: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
const W: Interval = Interval::PAPER_DEFAULT;

fn learn(dict: &mut EfdDictionary, app: &str, means: &[f64]) {
    let metric = small_catalog().id("nr_mapped_vmstat").unwrap();
    dict.learn(&LabeledObservation {
        label: AppLabel::new(app, "X"),
        query: Query::from_node_means(metric, W, means),
    });
}

/// The `base` side: three apps, two nodes each, rounding depth 2.
fn base_dict() -> EfdDictionary {
    let mut d = EfdDictionary::new(RoundingDepth::new(2));
    learn(&mut d, "sp", &[7617.0, 7520.0]);
    learn(&mut d, "bt", &[7638.0, 7540.0]);
    learn(&mut d, "ft", &[6000.0, 6005.0]);
    d
}

/// The `next` side against `base`:
/// * `sp` unchanged — but `cg` learns onto its keys (**relabelled**);
/// * `bt` moves its node-1 fingerprint (**removed** + **added**);
/// * `cg` is new (**added** keys, coverage 0 → 4);
/// * `ft` is gone (**removed** keys, coverage 2 → 0).
fn next_dict() -> EfdDictionary {
    let mut d = EfdDictionary::new(RoundingDepth::new(2));
    learn(&mut d, "sp", &[7617.0, 7520.0]);
    learn(&mut d, "bt", &[7638.0, 9900.0]);
    learn(&mut d, "cg", &[8110.0, 8110.0]);
    learn(&mut d, "cg", &[7617.0, 7520.0]);
    d
}

/// Run `efd` with `cwd` = the fixtures dir, so the report's artifact
/// labels are the stable relative paths the goldens were blessed with.
fn efd_in(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_efd"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn efd")
}

/// Write the committed fixture dictionaries (bless mode only), then
/// return the fixtures dir. The EFDB pair drives the golden reports;
/// `base.json` is the byte-different-but-equal encoding of `base.efdb`.
fn fixtures() -> &'static Path {
    static FIX: OnceLock<PathBuf> = OnceLock::new();
    FIX.get_or_init(|| {
        let dir = PathBuf::from(FIXTURES);
        if std::env::var_os("EFD_BLESS").is_some() {
            std::fs::create_dir_all(&dir).expect("fixtures dir");
            let cat = small_catalog();
            std::fs::write(dir.join("base.efdb"), binfmt::write_dictionary(&base_dict(), &cat))
                .expect("bless base.efdb");
            std::fs::write(dir.join("next.efdb"), binfmt::write_dictionary(&next_dict(), &cat))
                .expect("bless next.efdb");
            std::fs::write(dir.join("base.json"), serialize::to_json(&base_dict(), &cat))
                .expect("bless base.json");
        }
        assert!(
            dir.join("base.efdb").exists(),
            "fixtures missing — generate with EFD_BLESS=1 cargo test -p efd-cli --test diff_golden"
        );
        dir
    })
}

/// Compare the binary's stdout for `args` against a blessed golden,
/// (re)writing the golden first when blessing. Returns the stdout.
fn assert_matches_golden(args: &[&str], golden: &str, expect_code: i32) -> String {
    let dir = fixtures();
    let out = efd_in(dir, args);
    let stdout = String::from_utf8(out.stdout).expect("UTF-8 report");
    assert_eq!(
        out.status.code(),
        Some(expect_code),
        "{args:?}: stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let path = dir.join(golden);
    if std::env::var_os("EFD_BLESS").is_some() {
        std::fs::write(&path, &stdout).expect("bless golden");
    }
    let blessed = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("golden {golden} missing — re-bless with EFD_BLESS=1")
    });
    assert_eq!(
        stdout, blessed,
        "{args:?} diverged from {golden}: if the report format change is \
         intentional, re-bless with EFD_BLESS=1"
    );
    stdout
}

#[test]
fn table_report_matches_the_blessed_golden_and_exits_3() {
    let report = assert_matches_golden(
        &["diff", "base.efdb", "next.efdb"],
        "diff_table.golden",
        3,
    );
    // The fixture pair exercises every change class — spot-check that
    // the blessed report actually contains all of them.
    for needle in [
        "added",
        "removed",
        "relabelled",
        "verdict:    semantically different",
    ] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }
}

#[test]
fn json_report_matches_the_blessed_golden_and_exits_3() {
    let report = assert_matches_golden(
        &["diff", "base.efdb", "next.efdb", "--format", "json"],
        "diff_json.golden",
        3,
    );
    assert!(report.contains("\"semantically_equal\": false"), "{report}");
    let parsed: serde_json::Value =
        serde_json::from_str(&report).expect("JSON report must parse");
    let field = |k: &str| {
        parsed
            .get(k)
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("report field {k:?} missing"))
            .to_string()
    };
    assert_eq!(field("a"), "base.efdb");
    assert_eq!(field("b"), "next.efdb");
}

#[test]
fn identical_artifacts_diff_empty_and_exit_zero() {
    let out = efd_in(fixtures(), &["diff", "base.efdb", "base.efdb"]);
    assert_eq!(out.status.code(), Some(0));
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("0 added, 0 removed, 0 relabelled"), "{report}");
    assert!(report.contains("semantically equal"), "{report}");
}

#[test]
fn byte_different_encodings_of_one_dictionary_are_semantically_equal() {
    let dir = fixtures();
    // Same dictionary, two wire formats: the bytes differ, the
    // structure must not.
    assert_ne!(
        std::fs::read(dir.join("base.efdb")).unwrap(),
        std::fs::read(dir.join("base.json")).unwrap()
    );
    let out = efd_in(dir, &["diff", "base.efdb", "base.json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("semantically equal"));
}

#[test]
fn empty_vs_empty_exits_zero() {
    let dir = std::env::temp_dir().join(format!("efd-diff-empty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let empty = serialize::to_json(&EfdDictionary::new(RoundingDepth::new(2)), &small_catalog());
    std::fs::write(dir.join("a.json"), &empty).unwrap();
    std::fs::write(dir.join("b.json"), &empty).unwrap();
    let out = efd_in(&dir, &["diff", "a.json", "b.json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(report.contains("0 -> 0 (+0)"), "{report}");
    assert!(report.contains("semantically equal"), "{report}");
    std::fs::remove_dir_all(&dir).unwrap();
}
