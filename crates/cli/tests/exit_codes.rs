//! CLI argument error paths: bad flag values must produce a one-line
//! `error: …` on stderr and a nonzero exit code — never a panic backtrace.

use std::process::{Command, Output};

fn efd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_efd"))
        .args(args)
        .output()
        .expect("spawn efd")
}

/// Asserts the invocation failed cleanly: nonzero exit, a single
/// `error: …` line on stderr, and no panic/backtrace spew.
fn assert_clean_error(args: &[&str], expect_in_stderr: &str) {
    let out = efd(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "{args:?} unexpectedly succeeded; stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "{args:?} panicked instead of erroring:\n{stderr}"
    );
    let error_lines: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("error: "))
        .collect();
    assert_eq!(
        error_lines.len(),
        1,
        "{args:?}: expected exactly one error line, got:\n{stderr}"
    );
    assert!(
        error_lines[0].contains(expect_in_stderr),
        "{args:?}: error line {:?} does not mention {expect_in_stderr:?}",
        error_lines[0]
    );
}

#[test]
fn unknown_backend_is_a_clean_error() {
    // --backend is validated before --load is touched.
    assert_clean_error(
        &["serve", "--load", "/nonexistent.efdb", "--backend", "bogus"],
        "--backend",
    );
}

#[test]
fn unknown_format_is_a_clean_error() {
    assert_clean_error(
        &["dump", "--out", "/tmp/efd-exit-code-test.bin", "--format", "bogus"],
        "--format",
    );
}

#[test]
fn missing_load_file_is_a_clean_error() {
    assert_clean_error(&["serve", "--load", "/nonexistent/efd.dump"], "/nonexistent");
}

#[test]
fn serve_without_load_is_a_clean_error() {
    assert_clean_error(&["serve"], "--load");
}

#[test]
fn unknown_command_is_a_clean_error() {
    assert_clean_error(&["frobnicate"], "frobnicate");
}

#[test]
fn unknown_experiment_is_a_clean_error() {
    assert_clean_error(&["evaluate", "--experiment", "bogus"], "bogus");
}

#[test]
fn unknown_classifier_is_a_clean_error() {
    assert_clean_error(
        &["evaluate", "--experiment", "normal-fold", "--classifier", "bogus"],
        "classifier",
    );
}

#[test]
fn flag_without_value_is_a_clean_error() {
    assert_clean_error(&["serve", "--load"], "needs a value");
}

#[test]
fn bad_numeric_flag_is_a_clean_error() {
    assert_clean_error(
        &["serve", "--load", "/nonexistent.efdb", "--shards", "many"],
        "--shards",
    );
}

#[test]
fn help_exits_zero() {
    let out = efd(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--backend snapshot|sharded|combo"), "{stdout}");
}
