//! CLI argument error paths: bad flag values must produce a one-line
//! `error: …` on stderr and a nonzero exit code — never a panic backtrace.

use std::process::{Command, Output};

fn efd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_efd"))
        .args(args)
        .output()
        .expect("spawn efd")
}

/// Asserts the invocation failed cleanly: nonzero exit, a single
/// `error: …` line on stderr, and no panic/backtrace spew.
fn assert_clean_error(args: &[&str], expect_in_stderr: &str) {
    let out = efd(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "{args:?} unexpectedly succeeded; stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "{args:?} panicked instead of erroring:\n{stderr}"
    );
    let error_lines: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("error: "))
        .collect();
    assert_eq!(
        error_lines.len(),
        1,
        "{args:?}: expected exactly one error line, got:\n{stderr}"
    );
    assert!(
        error_lines[0].contains(expect_in_stderr),
        "{args:?}: error line {:?} does not mention {expect_in_stderr:?}",
        error_lines[0]
    );
}

#[test]
fn unknown_backend_is_a_clean_error() {
    // --backend is validated before --load is touched.
    assert_clean_error(
        &["serve", "--load", "/nonexistent.efdb", "--backend", "bogus"],
        "--backend",
    );
}

#[test]
fn unknown_format_is_a_clean_error() {
    assert_clean_error(
        &["dump", "--out", "/tmp/efd-exit-code-test.bin", "--format", "bogus"],
        "--format",
    );
}

#[test]
fn missing_load_file_is_a_clean_error() {
    assert_clean_error(&["serve", "--load", "/nonexistent/efd.dump"], "/nonexistent");
}

#[test]
fn serve_without_load_is_a_clean_error() {
    assert_clean_error(&["serve"], "--load");
}

#[test]
fn unknown_command_is_a_clean_error() {
    assert_clean_error(&["frobnicate"], "frobnicate");
}

#[test]
fn unknown_experiment_is_a_clean_error() {
    assert_clean_error(&["evaluate", "--experiment", "bogus"], "bogus");
}

#[test]
fn unknown_classifier_is_a_clean_error() {
    assert_clean_error(
        &["evaluate", "--experiment", "normal-fold", "--classifier", "bogus"],
        "classifier",
    );
}

#[test]
fn flag_without_value_is_a_clean_error() {
    assert_clean_error(&["serve", "--load"], "needs a value");
}

#[test]
fn bad_numeric_flag_is_a_clean_error() {
    assert_clean_error(
        &["serve", "--load", "/nonexistent.efdb", "--shards", "many"],
        "--shards",
    );
}

/// A scratch directory for WAL fixtures, fresh per test.
fn wal_fixture_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("efd-exit-codes-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn truncated_efdb_load_reports_the_byte_count() {
    // A structurally broken EFDB file must fail with the decode error
    // AND the file's size, so the user can tell truncation from schema
    // drift at a glance.
    let dir = wal_fixture_dir("truncated-efdb");
    let path = dir.join("torn.efdb");
    std::fs::write(&path, b"EFDB\x01\x00").unwrap();
    assert_clean_error(&["serve", "--load", path.to_str().unwrap()], "file is 6 bytes");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn garbage_after_efdb_magic_is_a_clean_error() {
    // Right magic, garbage body: the EFDB decode path (chosen by magic
    // sniffing, not extension) must surface the structured decode error
    // with the file size appended.
    let dir = wal_fixture_dir("bad-body");
    let path = dir.join("garbage.efdb");
    let mut bytes = b"EFDB".to_vec();
    bytes.extend_from_slice(&[0xEEu8; 64]);
    std::fs::write(&path, &bytes).unwrap();
    assert_clean_error(
        &["serve", "--load", path.to_str().unwrap()],
        "file is 68 bytes",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compact_without_wal_flag_is_a_clean_error() {
    assert_clean_error(&["compact"], "--wal");
}

#[test]
fn wal_verify_on_a_missing_directory_is_a_clean_error() {
    assert_clean_error(&["wal-verify", "--wal", "/nonexistent-wal-dir"], "wal.log");
}

#[test]
fn serve_wal_conflicts_with_load() {
    assert_clean_error(
        &["serve", "--wal", "/tmp/x", "--load", "/tmp/y.efdb"],
        "mutually exclusive",
    );
}

#[test]
fn wal_verify_strict_fails_on_a_corrupt_log_tail() {
    use efd_core::wal::{encode_log, WalRecord};
    use efd_core::RoundingDepth;

    let dir = wal_fixture_dir("strict-corrupt");
    let mut bytes = encode_log(
        RoundingDepth::new(2),
        0,
        &[
            WalRecord::ForgetApp { app: "a".into() },
            WalRecord::ForgetApp { app: "b".into() },
        ],
    );
    // Flip a byte in the LAST record's payload: record #0 stays valid,
    // the tail fault is a corrupt record.
    let n = bytes.len();
    bytes[n - 1] ^= 0x20;
    std::fs::write(dir.join("wal.log"), &bytes).unwrap();

    // Non-strict: the audit tolerates the tail fault (exit zero)...
    let out = efd(&["wal-verify", "--wal", dir.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "non-strict audit must tolerate: {stdout}");
    assert!(stdout.contains("corrupt record"), "{stdout}");

    // ...strict mode turns the same fault into a nonzero exit.
    assert_clean_error(
        &["wal-verify", "--wal", dir.to_str().unwrap(), "--strict", "true"],
        "corrupt record",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_wal_with_a_missing_segment_is_a_clean_error() {
    use efd_core::wal::encode_log;
    use efd_core::RoundingDepth;

    let dir = wal_fixture_dir("missing-segment");
    // A log whose header demands segment 1, with no segment on disk:
    // recovery must refuse rather than serve a partial dictionary.
    std::fs::write(
        dir.join("wal.log"),
        encode_log(RoundingDepth::new(2), 1, &[]),
    )
    .unwrap();
    assert_clean_error(
        &["serve", "--wal", dir.to_str().unwrap()],
        "requires segment 1",
    );
    assert_clean_error(
        &["wal-verify", "--wal", dir.to_str().unwrap()],
        "requires segment 1",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A tiny synthetic EFDB dictionary on disk (for daemon-flag tests
/// that must get past engine loading to the bind step).
fn synth_dict(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("synth.efdb");
    let out = efd(&["dump", "--out", path.to_str().unwrap(), "--synth-keys", "64"]);
    assert!(
        out.status.success(),
        "dump --synth-keys failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

#[test]
fn listen_on_a_malformed_address_is_a_clean_error() {
    let dir = wal_fixture_dir("bad-addr");
    let dict = synth_dict(&dir);
    assert_clean_error(
        &["serve", "--listen", "not-an-address", "--load", dict.to_str().unwrap()],
        "bind not-an-address",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn listen_on_a_port_already_in_use_is_a_clean_error() {
    let dir = wal_fixture_dir("port-in-use");
    let dict = synth_dict(&dir);
    // Hold the port ourselves; the daemon must refuse it cleanly.
    let taken = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = taken.local_addr().unwrap().to_string();
    assert_clean_error(
        &["serve", "--listen", &addr, "--load", dict.to_str().unwrap()],
        "bind",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// An address nothing listens on (bound ephemeral, then released).
fn dead_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    l.local_addr().unwrap().to_string()
}

#[test]
fn loadgen_against_a_dead_daemon_is_a_clean_error() {
    assert_clean_error(
        &["loadgen", "--addr", &dead_addr(), "--duration", "0.2", "--ping", "true"],
        "connect",
    );
}

#[test]
fn loadgen_without_addr_is_a_clean_error() {
    assert_clean_error(&["loadgen"], "--addr");
}

#[test]
fn ctl_against_a_dead_daemon_is_a_clean_error() {
    let addr = dead_addr();
    assert_clean_error(&["ctl", "ping", "--addr", &addr], &addr);
}

#[test]
fn ctl_unknown_action_is_a_clean_error() {
    // The action is rejected after connecting, so park a listener that
    // accepts but never speaks.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    assert_clean_error(&["ctl", "bogus", "--addr", &addr], "unknown ctl action");
}

#[test]
fn diff_without_operands_is_a_clean_error() {
    assert_clean_error(&["diff"], "two artifacts");
    assert_clean_error(&["diff", "only-one.efdb"], "two artifacts");
}

#[test]
fn diff_unknown_format_is_a_clean_error() {
    // The format is validated before either side is loaded.
    assert_clean_error(
        &["diff", "/nonexistent/a.efdb", "/nonexistent/b.efdb", "--format", "bogus"],
        "--format",
    );
}

#[test]
fn diff_missing_file_is_exit_1_not_3() {
    // The exit-code contract: 3 is reserved for "loaded both sides and
    // they differ"; a load failure is an ordinary error (1).
    let out = efd(&["diff", "/nonexistent/a.efdb", "/nonexistent/b.efdb"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent"));
}

#[test]
fn catalog_without_action_is_a_clean_error() {
    assert_clean_error(&["catalog"], "publish|list|show|rollback");
}

#[test]
fn catalog_unknown_action_is_a_clean_error() {
    assert_clean_error(&["catalog", "frobnicate", "--dir", "/tmp"], "unknown catalog action");
}

#[test]
fn catalog_publish_without_required_flags_is_a_clean_error() {
    assert_clean_error(&["catalog", "publish"], "--dir");
    assert_clean_error(&["catalog", "publish", "--dir", "/tmp/efd-no-such-catalog"], "--name");
    assert_clean_error(
        &["catalog", "publish", "--dir", "/tmp/efd-no-such-catalog", "--name", "x"],
        "--from",
    );
}

#[test]
fn catalog_show_rejects_an_invalid_reference() {
    assert_clean_error(
        &["catalog", "show", "not a ref!", "--dir", "/tmp/efd-no-such-catalog"],
        "invalid catalog reference",
    );
}

#[test]
fn serve_catalog_ref_without_catalog_dir_is_a_clean_error() {
    // `name@vN` only resolves through a catalog; without --catalog the
    // error must say which flag is missing, not "file not found".
    assert_clean_error(&["serve", "--load", "hpc-apps@v1"], "--catalog");
}

#[test]
fn serve_manifest_conflicts_with_load_and_wal() {
    assert_clean_error(
        &["serve", "--manifest", "/tmp/m.json", "--load", "/tmp/x.efdb"],
        "mutually exclusive",
    );
    assert_clean_error(
        &[
            "serve", "--listen", "127.0.0.1:0", "--manifest", "/tmp/m.json", "--wal", "/tmp/w",
        ],
        "mutually exclusive",
    );
}

#[test]
fn serve_missing_manifest_file_is_a_clean_error() {
    assert_clean_error(
        &["serve", "--manifest", "/nonexistent/stack.json"],
        "/nonexistent",
    );
}

#[test]
fn help_exits_zero() {
    let out = efd(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--backend snapshot|sharded|combo"), "{stdout}");
}
