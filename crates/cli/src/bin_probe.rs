fn main() {
    let vals = vec![458175847.2046428f64, -365438309.52612925, f64::NAN, 915715693.3948455];
    let s = efd_telemetry::series::TimeSeries::from_values(vals.clone());
    let json = serde_json::to_string(&s).unwrap();
    println!("json: {json}");
    let back: efd_telemetry::series::TimeSeries = serde_json::from_str(&json).unwrap();
    for (a, b) in s.values().iter().zip(back.values()) {
        println!("{a} vs {b}  eq={}", (a == b) || (a.is_nan() && b.is_nan()));
    }
}
