//! `efd` — command-line front end for the Execution Fingerprint Dictionary.
//!
//! ```text
//! efd table <1|2|3|4>                     regenerate a paper table
//! efd figure2 [--trees N]                 regenerate Figure 2 (both systems)
//! efd evaluate --experiment <kind> [--classifier efd|taxonomist|knn|gaussian-nb]
//! efd evaluate --scenario <name|all>      adversarial & drift matrix (SCENARIO_9.json)
//!              [--backend <name|all>] [--intensity X] [--seed N] [--out f]
//! efd screen [--top N]                    per-metric F-scores (Table 3 data)
//! efd recognize --run <idx>               leave-one-out demo on run <idx>
//! efd dump --out <path> [--format f]      train on everything, write JSON or EFDB
//! efd convert --in <a> --out <b>          JSON ↔ EFDB, round-trip verified
//! efd export-dict --out <path>            alias of `dump --format json`
//! efd serve --load <path> [--queries f]   batch recognition service demo
//!           [--backend snapshot|sharded|combo|efdb]  (one engine API, any backend)
//! efd serve --wal <dir> [--learn N]       durable serving: write-ahead logged
//!           [--wal-sync always|batch|none]      learning, crash recovery on restart
//! efd serve --listen <addr> ...           the network daemon: TCP frame protocol,
//!                                         /metrics over HTTP, SIGHUP hot reload
//! efd serve --manifest <stack.json> ...   manifest-stacked recognizer (exact →
//!                                         combo → ml fallback), batch or --listen
//! efd catalog <publish|list|show|rollback>  versioned artifact store: --dir <dir>
//! efd diff <A> <B> [--format table|json]  structural dictionary diff; exit 3 when
//!                                         semantically different
//! efd loadgen --addr <a> [--qps N]        drive a daemon, report latency percentiles
//! efd ctl <action> --addr <a>             ping|stats|status|swap|shutdown|metrics
//! efd compact --wal <dir> [--out p]       merge WAL segments+log into canonical EFDB
//! efd wal-verify --wal <dir>              audit a WAL directory offline
//! efd bench-snapshot [--out f]            machine-readable perf snapshot (BENCH_7.json)
//! efd report --out <path>                 write EXPERIMENTS.md content
//! efd help
//! ```
//!
//! All commands operate on the synthetic public-subset dataset
//! (`--subset full` switches to the full-repetition variant,
//! `--seed <u64>` regenerates a different universe).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use efd_catalog::{Baseline, Catalog, CatalogRef, Manifest, StageBackend};
use efd_core::engine::Recognize;
use efd_core::{binfmt, serialize, EfdDictionary};
use efd_eval::classifier::{EfdClassifier, ExecutionClassifier, TaxonomistClassifier};
use efd_eval::engine::{EngineClassifier, MlBackend};
use efd_eval::experiments::{run_experiment, EvalOptions, ExperimentKind, ExperimentResult};
use efd_eval::report;
use efd_eval::screening::screen_metrics;
use efd_ml::taxonomist::TaxonomistConfig;
use efd_workload::scenario::{build as scenario_build, CleanRuns, ScenarioKind, ScenarioSpec};
use efd_workload::{Dataset, DatasetSpec, SubsetKind};

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { positional, flags })
    }

    fn flag(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.flag(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value {v:?} for --{key}")),
        }
    }
}

fn dataset_from(args: &Args) -> Result<Dataset, String> {
    let subset = match args.flag("subset") {
        None | Some("public") => SubsetKind::Public,
        Some("full") => SubsetKind::Full,
        Some(other) => return Err(format!("unknown --subset {other:?} (public|full)")),
    };
    let mut spec = DatasetSpec {
        subset,
        ..DatasetSpec::default()
    };
    if let Some(seed) = args.flag_parsed::<u64>("seed")? {
        spec.master_seed = seed;
    }
    Ok(Dataset::generate(spec))
}

fn taxonomist_cfg(args: &Args) -> Result<TaxonomistConfig, String> {
    let mut cfg = TaxonomistConfig::default();
    if let Some(n) = args.flag_parsed::<usize>("trees")? {
        cfg.n_trees = n;
    }
    Ok(cfg)
}

fn experiment_kind(name: &str) -> Result<ExperimentKind, String> {
    Ok(match name {
        "normal-fold" => ExperimentKind::NormalFold,
        "soft-input" => ExperimentKind::SoftInput,
        "soft-unknown" => ExperimentKind::SoftUnknown,
        "hard-input" => ExperimentKind::HardInput,
        "hard-unknown" => ExperimentKind::HardUnknown,
        other => {
            return Err(format!(
                "unknown experiment {other:?} \
                 (normal-fold|soft-input|soft-unknown|hard-input|hard-unknown)"
            ))
        }
    })
}

fn headline(dataset: &Dataset) -> efd_telemetry::MetricId {
    dataset
        .catalog()
        .id(efd_eval::paper::HEADLINE_METRIC)
        .expect("headline metric present in catalog")
}

fn run_all_experiments(dataset: &Dataset, cfg: TaxonomistConfig) -> Vec<ExperimentResult> {
    let opts = EvalOptions::default();
    let metric = headline(dataset);
    let mut results = Vec::new();
    let mut efd = EfdClassifier::new(metric);
    for kind in ExperimentKind::ALL {
        eprintln!("running EFD {kind}…");
        results.push(run_experiment(kind, &mut efd, dataset, &opts));
    }
    let mut tax = TaxonomistClassifier::new(cfg);
    for kind in ExperimentKind::ALL {
        eprintln!("running Taxonomist {kind}…");
        results.push(run_experiment(kind, &mut tax, dataset, &opts));
    }
    results
}

fn cmd_table(args: &Args) -> Result<(), String> {
    let which = args
        .positional
        .first()
        .ok_or("table needs a number (1-4)")?;
    match which.as_str() {
        "1" => println!("{}", report::render_table1().render()),
        "2" => {
            let d = dataset_from(args)?;
            println!("{}", d.table2().render());
        }
        "3" => {
            let d = dataset_from(args)?;
            let scores = screen_metrics(&d, &EvalOptions::default(), None);
            println!("{}", report::render_table3(&scores).render());
            let top: usize = args.flag_parsed("top")?.unwrap_or(20);
            println!("{}", report::render_table3_top(&scores, top).render());
        }
        "4" => {
            let d = dataset_from(args)?;
            println!("{}", report::render_table4(&d).render());
        }
        other => return Err(format!("unknown table {other:?} (1-4)")),
    }
    Ok(())
}

fn cmd_figure2(args: &Args) -> Result<(), String> {
    let d = dataset_from(args)?;
    let results = run_all_experiments(&d, taxonomist_cfg(args)?);
    println!("{}", report::render_figure2(&results).render());
    Ok(())
}

fn cmd_evaluate(args: &Args) -> Result<(), String> {
    if args.flag("scenario").is_some() {
        return cmd_evaluate_scenario(args);
    }
    let kind = experiment_kind(
        args.flag("experiment")
            .ok_or("need --experiment or --scenario")?,
    )?;
    let d = dataset_from(args)?;
    let opts = EvalOptions::default();
    let metric = headline(&d);
    // `knn` / `gaussian-nb` run through the engine API: an `MlBackend`
    // (the ml family as a `Learn`/`Recognize` backend) adapted into the
    // experiment harness by `EngineClassifier` — the same plumbing that
    // would host any other engine backend.
    let result = match args.flag("classifier").unwrap_or("efd") {
        "efd" => run_experiment(kind, &mut EfdClassifier::new(metric), &d, &opts),
        "taxonomist" => run_experiment(
            kind,
            &mut TaxonomistClassifier::new(taxonomist_cfg(args)?),
            &d,
            &opts,
        ),
        "knn" => run_experiment(
            kind,
            &mut EngineClassifier::new("kNN", metric, || MlBackend::knn(5, 0.5)),
            &d,
            &opts,
        ),
        "gaussian-nb" => run_experiment(
            kind,
            &mut EngineClassifier::new("GaussianNB", metric, || MlBackend::gaussian_nb(0.5)),
            &d,
            &opts,
        ),
        other => {
            return Err(format!(
                "unknown classifier {other:?} (efd|taxonomist|knn|gaussian-nb)"
            ))
        }
    };
    println!(
        "{} / {}: mean macro-F1 = {:.3}",
        result.classifier, result.kind, result.mean_f1
    );
    for (variant, f1) in &result.per_variant {
        println!("  {variant:<24} {f1:.3}");
    }
    Ok(())
}

/// Default intensity grid for the scenario matrix: the clean baseline
/// plus quarter steps to full strength.
const SCENARIO_GRID: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One scored matrix cell, held until the whole run is serialized.
struct ScenarioCell {
    scenario: ScenarioKind,
    backend: String,
    intensity: f64,
    relearn: bool,
    report: efd_eval::AbstentionReport,
}

fn scenario_kinds(arg: &str) -> Result<Vec<ScenarioKind>, String> {
    if arg == "all" {
        return Ok(ScenarioKind::ALL.to_vec());
    }
    arg.split(',')
        .map(|name| {
            ScenarioKind::parse(name).ok_or_else(|| {
                format!(
                    "unknown scenario {name:?} (all|{})",
                    ScenarioKind::ALL.map(|k| k.name()).join("|")
                )
            })
        })
        .collect()
}

fn scenario_backends(arg: &str) -> Result<Vec<efd_eval::BackendKind>, String> {
    if arg == "all" {
        return Ok(efd_eval::BackendKind::ALL.to_vec());
    }
    arg.split(',')
        .map(|name| {
            efd_eval::BackendKind::parse(name).ok_or_else(|| {
                format!(
                    "unknown backend {name:?} (all|{})",
                    efd_eval::BackendKind::ALL.map(|b| b.name()).join("|")
                )
            })
        })
        .collect()
}

/// `efd evaluate --scenario <name|all>`: the adversarial & drift matrix.
///
/// Every requested backend is fitted once on the canonical clean training
/// split (through `EngineClassifier`, the adapter every engine backend
/// shares), then scored on every requested scenario × intensity cell.
/// `concept-drift` cells grow an extra online-relearning arm
/// (`snapshot+relearn`): the same drifted sequence served live through
/// `OnlineSession` with aging/eviction maintenance between chunks.
fn cmd_evaluate_scenario(args: &Args) -> Result<(), String> {
    let kinds = scenario_kinds(args.flag("scenario").expect("checked by caller"))?;
    let backends = scenario_backends(args.flag("backend").unwrap_or("all"))?;
    let seed = args.flag_parsed::<u64>("seed")?.unwrap_or(0);
    let intensities: Vec<f64> = match args.flag_parsed::<f64>("intensity")? {
        Some(i) if i.is_finite() && (0.0..=1.0).contains(&i) => vec![i],
        Some(i) => return Err(format!("--intensity must be in [0, 1], got {i}")),
        None => SCENARIO_GRID.to_vec(),
    };
    let out = args.flag("out").unwrap_or("SCENARIO_9.json");

    let d = dataset_from(args)?;
    let metric = headline(&d);
    let interval = efd_telemetry::Interval::PAPER_DEFAULT;
    let opts = efd_eval::CellOptions::default();
    let clean = CleanRuns::from_dataset(&d, metric, interval);

    // One fit per backend: the clean training split is identical for
    // every scenario and intensity, so the matrix only pays the
    // perturb-and-recognize cost per cell.
    let fitted: Vec<_> = backends
        .iter()
        .map(|&b| {
            eprintln!("fitting {b}…");
            (b, efd_eval::fit_backend(b, &d, metric, interval, opts))
        })
        .collect();

    let mut cells: Vec<ScenarioCell> = Vec::new();
    for &kind in &kinds {
        for &intensity in &intensities {
            let spec = ScenarioSpec {
                kind,
                intensity,
                seed,
            };
            let data = scenario_build(&clean, &spec);
            for (b, clf) in &fitted {
                cells.push(ScenarioCell {
                    scenario: kind,
                    backend: b.name().to_string(),
                    intensity,
                    relearn: false,
                    report: efd_eval::run_cell(clf, &data, metric, interval),
                });
            }
            if kind == ScenarioKind::ConceptDrift {
                cells.push(ScenarioCell {
                    scenario: kind,
                    backend: "snapshot+relearn".to_string(),
                    intensity,
                    relearn: true,
                    report: efd_eval::drift_relearn(&data, metric, interval, &opts),
                });
            }
        }
    }

    // Human-readable: one table per scenario, rows ordered by backend
    // then intensity.
    for &kind in &kinds {
        let mut t = efd_util::table::TextTable::new(vec![
            "backend",
            "intensity",
            "macro-F1",
            "accuracy",
            "unk-P",
            "unk-R",
            "ECE",
            "verdicts",
        ])
        .with_title(format!("scenario: {kind}"));
        for c in cells.iter().filter(|c| c.scenario == kind) {
            let r = &c.report;
            t.add_row(vec![
                c.backend.clone(),
                format!("{:.2}", c.intensity),
                format!("{:.3}", r.macro_f1),
                format!("{:.3}", r.accuracy),
                format!("{:.3}", r.unknown_precision),
                format!("{:.3}", r.unknown_recall),
                format!("{:.3}", r.calibration_error),
                r.verdicts.to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    // The headline claim of the drift scenario, stated explicitly.
    if let Some(max_i) = intensities.iter().cloned().fold(None::<f64>, |m, i| {
        Some(m.map_or(i, |m| m.max(i)))
    }) {
        let at = |backend: &str| {
            cells
                .iter()
                .find(|c| {
                    c.scenario == ScenarioKind::ConceptDrift
                        && c.backend == backend
                        && c.intensity == max_i
                })
                .map(|c| c.report.macro_f1)
        };
        if let (Some(relearn), Some(stat)) = (at("snapshot+relearn"), at("snapshot")) {
            println!(
                "concept-drift @ intensity {max_i:.2}: online relearning macro-F1 \
                 {relearn:.3} vs static snapshot {stat:.3} ({:+.3})",
                relearn - stat
            );
        }
    }

    // Machine-readable matrix, schema mirroring BENCH_7/BENCH_8.
    let mut body = String::new();
    body.push_str("{\n  \"suite\": \"scenario-matrix\",\n");
    body.push_str(&format!(
        "  \"config\": {{ \"seed\": {seed}, \"metric\": \"{}\", \"interval\": [{}, {}], \
         \"scenarios\": [{}], \"backends\": [{}], \"intensities\": [{}] }},\n",
        d.catalog().name(metric),
        interval.start,
        interval.end,
        kinds
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(", "),
        backends
            .iter()
            .map(|b| format!("\"{b}\""))
            .collect::<Vec<_>>()
            .join(", "),
        intensities
            .iter()
            .map(|i| format!("{i}"))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    body.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        body.push_str(&format!(
            "    {{ \"scenario\": \"{}\", \"backend\": \"{}\", \"intensity\": {}, \
             \"relearn\": {}, \"n\": {}, \"macro_f1\": {:.6}, \"accuracy\": {:.6}, \
             \"unknown_precision\": {:.6}, \"unknown_recall\": {:.6}, \
             \"unknown_f1\": {:.6}, \"calibration_error\": {:.6}, \
             \"tie_coverage\": {:.6}, \"recognized\": {}, \"ambiguous\": {}, \
             \"unknown\": {} }}{}\n",
            c.scenario,
            c.backend,
            c.intensity,
            c.relearn,
            r.n,
            r.macro_f1,
            r.accuracy,
            r.unknown_precision,
            r.unknown_recall,
            r.unknown_f1,
            r.calibration_error,
            r.tie_coverage,
            r.verdicts.recognized,
            r.verdicts.ambiguous,
            r.verdicts.unknown,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(out, &body).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out} ({} cells)", cells.len());
    Ok(())
}

fn cmd_screen(args: &Args) -> Result<(), String> {
    let d = dataset_from(args)?;
    let scores = screen_metrics(&d, &EvalOptions::default(), None);
    let top: usize = args.flag_parsed("top")?.unwrap_or(30);
    println!("{}", report::render_table3_top(&scores, top).render());
    Ok(())
}

fn cmd_recognize(args: &Args) -> Result<(), String> {
    let run: usize = args.flag_parsed("run")?.ok_or("need --run <index>")?;
    let d = dataset_from(args)?;
    if run >= d.len() {
        return Err(format!("run index {run} out of range (0..{})", d.len()));
    }
    let metric = headline(&d);
    let mut c = EfdClassifier::new(metric);
    let train: Vec<usize> = (0..d.len()).filter(|&i| i != run).collect();
    c.fit(&d, &train);
    let model = c.model().expect("fitted");
    // The EFD's data diet: only the first two minutes of the test run.
    let trace = d.materialize_prefix(
        run,
        &efd_telemetry::trace::MetricSelection::single(metric),
        120,
    );
    let rec = model.recognize_trace(&trace);
    println!("run #{run}: true label = {}", d.labels()[run]);
    println!("selected rounding depth: {}", model.depth());
    println!("verdict: {:?}", rec.verdict);
    if let Some(l) = rec.predicted_label() {
        println!("predicted label (with input): {l}");
    }
    println!("votes:");
    for (app, votes) in &rec.app_votes {
        println!("  {app:<12} {votes}");
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.flag("out").ok_or("need --out <dir>")?;
    let count: usize = args.flag_parsed("count")?.unwrap_or(4);
    let d = dataset_from(args)?;
    let metric = headline(&d);
    let selection = efd_telemetry::trace::MetricSelection::single(metric);
    std::fs::create_dir_all(out).map_err(|e| format!("mkdir {out}: {e}"))?;
    let mut written = 0usize;
    for i in 0..count.min(d.len()) {
        let trace = d.materialize(i, &selection);
        for node in &trace.nodes {
            let path = format!("{out}/run{i:04}_node{}.csv", node.node);
            let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
            efd_telemetry::csv::write_node_csv(&trace, node.node, d.catalog(), file)
                .map_err(|e| format!("{path}: {e}"))?;
            written += 1;
        }
    }
    println!(
        "wrote {written} node CSVs for {} runs to {out}/ \
         (LDMS-artifact layout; re-ingest with `efd ingest-csv`)",
        count.min(d.len())
    );
    Ok(())
}

fn cmd_ingest_csv(args: &Args) -> Result<(), String> {
    let dir = args.flag("dir").ok_or("need --dir <path>")?;
    let prefix = args.flag("run").ok_or("need --run <file-prefix, e.g. run0003>")?;
    let d = dataset_from(args)?;

    // Read every node CSV of the requested run.
    let mut csvs = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().to_string();
        if !name.starts_with(prefix) || !name.ends_with(".csv") {
            continue;
        }
        let file = std::fs::File::open(entry.path()).map_err(|e| format!("{name}: {e}"))?;
        let parsed = efd_telemetry::csv::read_node_csv(std::io::BufReader::new(file))
            .map_err(|e| format!("{name}: {e}"))?;
        csvs.push(parsed);
    }
    if csvs.is_empty() {
        return Err(format!("no CSVs matching {prefix}* in {dir}"));
    }
    let trace = efd_telemetry::csv::assemble_trace(csvs, d.catalog())
        .map_err(|e| e.to_string())?;
    println!(
        "ingested {} nodes x {} s (label in file: {})",
        trace.node_count(),
        trace.duration_s,
        trace.label
    );

    // Recognize it against a dictionary trained on the synthetic dataset.
    let metric = headline(&d);
    let mut c = EfdClassifier::new(metric);
    let all: Vec<usize> = (0..d.len()).collect();
    c.fit(&d, &all);
    let rec = c.model().expect("fitted").recognize_trace(&trace);
    println!("verdict: {:?}", rec.verdict);
    Ok(())
}

/// On-disk dictionary format, chosen by `--format` or the output
/// extension (`.efdb` → EFDB, anything else → JSON).
#[derive(Clone, Copy, PartialEq, Eq)]
enum DumpFormat {
    Json,
    Efdb,
}

impl DumpFormat {
    fn name(self) -> &'static str {
        match self {
            DumpFormat::Json => "json",
            DumpFormat::Efdb => "efdb",
        }
    }

    fn from_args(args: &Args, out_path: &str) -> Result<Self, String> {
        match args.flag("format") {
            None => Ok(if out_path.ends_with(".efdb") {
                DumpFormat::Efdb
            } else {
                DumpFormat::Json
            }),
            Some("json") => Ok(DumpFormat::Json),
            Some("efdb") => Ok(DumpFormat::Efdb),
            Some(other) => Err(format!("unknown --format {other:?} (efdb|json)")),
        }
    }
}

/// Encode a dictionary in the requested on-disk format.
fn encode_dict(
    dict: &EfdDictionary,
    catalog: &efd_telemetry::MetricCatalog,
    format: DumpFormat,
) -> Vec<u8> {
    match format {
        DumpFormat::Json => serialize::to_json(dict, catalog).into_bytes(),
        DumpFormat::Efdb => binfmt::write_dictionary(dict, catalog),
    }
}

/// Decode dictionary bytes, sniffing the format by the EFDB magic.
fn decode_dict(
    bytes: &[u8],
    catalog: &efd_telemetry::MetricCatalog,
    path: &str,
) -> Result<(EfdDictionary, DumpFormat), String> {
    if bytes.starts_with(&binfmt::MAGIC) {
        let dict = binfmt::read_dictionary(bytes, catalog).map_err(|e| format!("{path}: {e}"))?;
        Ok((dict, DumpFormat::Efdb))
    } else {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("{path}: {e}"))?;
        let dict = serialize::from_json(text, catalog).map_err(|e| format!("{path}: {e}"))?;
        Ok((dict, DumpFormat::Json))
    }
}

/// Train on every run and write the dictionary in `format`.
fn dump_to(args: &Args, out: &str, format: DumpFormat) -> Result<(), String> {
    let d = dataset_from(args)?;
    let mut c = EfdClassifier::new(headline(&d));
    let all: Vec<usize> = (0..d.len()).collect();
    c.fit(&d, &all);
    let bytes = encode_dict(c.model().expect("fitted").dictionary(), d.catalog(), format);
    std::fs::write(out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} bytes to {out} ({})", bytes.len(), format.name());
    Ok(())
}

fn cmd_dump(args: &Args) -> Result<(), String> {
    let out = args.flag("out").ok_or("need --out <path>")?;
    let format = DumpFormat::from_args(args, out)?;
    if let Some(keys) = args.flag_parsed::<usize>("synth-keys")? {
        // The synthetic serving keyspace (shared with `bench-snapshot`
        // and `loadgen --keyspace`) instead of the trained dataset —
        // how the 1M-key daemon fixture is produced.
        let d = dataset_from(args)?;
        let dict = synth_keyspace_dict(keys, headline(&d));
        let bytes = encode_dict(&dict, d.catalog(), format);
        std::fs::write(out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
        println!(
            "wrote {} bytes to {out} ({}, {keys} synthetic keys)",
            bytes.len(),
            format.name()
        );
        return Ok(());
    }
    dump_to(args, out, format)
}

/// Convert a dictionary dump between JSON and EFDB, verifying after the
/// write that the output round-trips to the same canonical dictionary.
fn cmd_convert(args: &Args) -> Result<(), String> {
    let in_path = args.flag("in").ok_or("need --in <path>")?;
    let out_path = args.flag("out").ok_or("need --out <path>")?;
    let d = dataset_from(args)?;
    let catalog = d.catalog();

    let input = std::fs::read(in_path).map_err(|e| format!("{in_path}: {e}"))?;
    let (dict, in_format) = decode_dict(&input, catalog, in_path)?;
    let out_format = match args.flag("format") {
        // Default direction: the other format.
        None if !out_path.ends_with(".json") && !out_path.ends_with(".efdb") => match in_format {
            DumpFormat::Json => DumpFormat::Efdb,
            DumpFormat::Efdb => DumpFormat::Json,
        },
        _ => DumpFormat::from_args(args, out_path)?,
    };
    let output = encode_dict(&dict, catalog, out_format);
    std::fs::write(out_path, &output).map_err(|e| format!("write {out_path}: {e}"))?;

    // Round-trip equality check: reload what was written and compare the
    // canonical EFDB encodings (identical bytes ⇔ identical keys, label
    // intern order, and depth ⇔ identical recognition behavior).
    let (back, _) = decode_dict(&output, catalog, out_path)?;
    if binfmt::write_dictionary(&back, catalog) != binfmt::write_dictionary(&dict, catalog) {
        return Err(format!(
            "round-trip verification failed: {out_path} does not restore the input dictionary"
        ));
    }
    println!(
        "converted {in_path} ({}, {} bytes) -> {out_path} ({}, {} bytes)",
        in_format.name(),
        input.len(),
        out_format.name(),
        output.len()
    );
    println!("round trip verified: output restores the identical canonical dictionary");
    Ok(())
}

/// Alias of `dump --format json` (the original JSON-only command).
fn cmd_export_dict(args: &Args) -> Result<(), String> {
    let out = args.flag("out").ok_or("need --out <path>")?;
    dump_to(args, out, DumpFormat::Json)
}

/// Parse a query batch file. Two formats, chosen by extension:
///
/// * `.json` — an array of `{"metric": name, "start": s, "end": e,
///   "means": [per-node means…]}` objects;
/// * anything else — CSV rows `metric,start,end,mean0,mean1,…` with a
///   variable number of trailing per-node means (optional header).
fn load_queries(
    path: &str,
    catalog: &efd_telemetry::MetricCatalog,
) -> Result<Vec<efd_core::Query>, String> {
    use serde::Deserialize;

    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut queries = Vec::new();
    if path.ends_with(".json") {
        let root: serde::Value =
            serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
        let serde::Value::Arr(items) = root else {
            return Err(format!("{path}: expected a JSON array of queries"));
        };
        for (i, item) in items.iter().enumerate() {
            let field = |k: &str| {
                item.get(k)
                    .ok_or_else(|| format!("{path}: query #{i} missing {k:?}"))
            };
            let name = String::from_value(field("metric")?).map_err(|e| e.to_string())?;
            let metric = catalog
                .id(&name)
                .ok_or_else(|| format!("{path}: query #{i}: unknown metric {name:?}"))?;
            let start = u32::from_value(field("start")?).map_err(|e| e.to_string())?;
            let end = u32::from_value(field("end")?).map_err(|e| e.to_string())?;
            if end <= start {
                return Err(format!("{path}: query #{i}: empty interval [{start}:{end}]"));
            }
            let means = Vec::<f64>::from_value(field("means")?).map_err(|e| e.to_string())?;
            if means.is_empty() {
                return Err(format!("{path}: query #{i}: no per-node means"));
            }
            queries.push(efd_core::Query::from_node_means(
                metric,
                efd_telemetry::Interval::new(start, end),
                &means,
            ));
        }
    } else {
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (lineno == 0 && line.starts_with("metric")) {
                continue;
            }
            let mut cols = line.split(',');
            let err = |what: &str| format!("{path}:{}: {what}", lineno + 1);
            let name = cols.next().ok_or_else(|| err("missing metric"))?.trim();
            let metric = catalog
                .id(name)
                .ok_or_else(|| err(&format!("unknown metric {name:?}")))?;
            let start: u32 = cols
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| err("bad start"))?;
            let end: u32 = cols
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| err("bad end"))?;
            if end <= start {
                return Err(err(&format!("empty interval [{start}:{end}]")));
            }
            let means = cols
                .map(|s| s.trim().parse::<f64>().map_err(|e| err(&e.to_string())))
                .collect::<Result<Vec<f64>, _>>()?;
            if means.is_empty() {
                return Err(err("no per-node means"));
            }
            queries.push(efd_core::Query::from_node_means(
                metric,
                efd_telemetry::Interval::new(start, end),
                &means,
            ));
        }
    }
    if queries.is_empty() {
        return Err(format!("{path}: no queries"));
    }
    Ok(queries)
}

/// Synthesize a recognition workload from the dataset: cycle its runs'
/// window means with small deterministic jitter (a stream of repeated
/// executions, as an always-on service would see).
fn synth_queries(d: &Dataset, count: usize) -> Vec<efd_core::Query> {
    let metric = headline(d);
    let sel = efd_telemetry::trace::MetricSelection::single(metric);
    let per_run: Vec<Vec<f64>> = d
        .window_means_all(&sel, efd_telemetry::Interval::PAPER_DEFAULT)
        .into_iter()
        .map(|nodes| nodes.into_iter().map(|m| m[0]).collect())
        .collect();
    let mut rng = efd_util::SplitMix64::new(0x5E21E);
    (0..count)
        .map(|i| {
            let means: Vec<f64> = per_run[i % per_run.len()]
                .iter()
                .map(|m| m * (1.0 + (rng.next_f64() - 0.5) * 0.004))
                .collect();
            efd_core::Query::from_node_means(
                metric,
                efd_telemetry::Interval::PAPER_DEFAULT,
                &means,
            )
        })
        .collect()
}

/// Which engine backend `efd serve` answers through — all of them behind
/// one `Box<dyn Recognize + Send + Sync>`, so the serving loop below is
/// backend-agnostic.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ServeBackend {
    /// Immutable published [`efd_serve::Snapshot`] (the default).
    Snapshot,
    /// Live [`efd_serve::ShardedDictionary`] (per-shard `RwLock`s).
    Sharded,
    /// Conjunctive [`efd_serve::ComboSnapshot`] over the same entries.
    Combo,
    /// Zero-copy [`efd_serve::EfdbSnapshot`] straight over the loaded
    /// EFDB bytes (requires an `.efdb` file).
    Efdb,
}

impl ServeBackend {
    fn from_args(args: &Args) -> Result<Self, String> {
        match args.flag("backend") {
            None | Some("snapshot") => Ok(ServeBackend::Snapshot),
            Some("sharded") => Ok(ServeBackend::Sharded),
            Some("combo") => Ok(ServeBackend::Combo),
            Some("efdb") => Ok(ServeBackend::Efdb),
            Some(other) => Err(format!(
                "unknown --backend {other:?} (snapshot|sharded|combo|efdb)"
            )),
        }
    }

}

/// Run the query batch through an engine and print the `batch:` and
/// `verdicts:` lines (the latter is what the CI crash-recovery smoke
/// diffs between a recovered WAL and a clean replay). Returns the
/// elapsed batch time for the caller's speedup line.
fn serve_batch(
    engine: std::sync::Arc<dyn Recognize + Send + Sync>,
    queries: &[efd_core::Query],
    repeat: usize,
) -> std::time::Duration {
    let server = efd_serve::BatchRecognizer::new(engine);
    let start = std::time::Instant::now();
    let mut answers = Vec::new();
    for _ in 0..repeat {
        answers = server.recognize_batch(queries);
    }
    let elapsed = start.elapsed();
    let total = queries.len() * repeat;

    let (mut recognized, mut ambiguous, mut unknown) = (0usize, 0usize, 0usize);
    for r in &answers {
        match &r.verdict {
            efd_core::Verdict::Recognized(_) => recognized += 1,
            efd_core::Verdict::Ambiguous(_) => ambiguous += 1,
            // `Verdict` is #[non_exhaustive]; count future variants with
            // the safeguard bucket.
            _ => unknown += 1,
        }
    }
    println!(
        "batch:      {total} queries in {:.3} s → {:.0} q/s ({} worker threads)",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9),
        efd_util::num_threads(queries.len()),
    );
    println!(
        "verdicts:   {recognized} recognized, {ambiguous} ambiguous, {unknown} unknown (per batch of {})",
        queries.len()
    );
    elapsed
}

/// Print the single-thread oracle throughput and speedup lines.
fn serve_oracle(dict: &EfdDictionary, queries: &[efd_core::Query], repeat: usize, batch: std::time::Duration) {
    let total = queries.len() * repeat;
    let start = std::time::Instant::now();
    for _ in 0..repeat {
        for q in queries {
            std::hint::black_box(dict.recognize(q).matched_points);
        }
    }
    let base = start.elapsed();
    println!(
        "oracle:     {total} queries in {:.3} s → {:.0} q/s (single-thread EfdDictionary)",
        base.as_secs_f64(),
        total as f64 / base.as_secs_f64().max(1e-9),
    );
    println!(
        "speedup:    {:.2}x",
        base.as_secs_f64() / batch.as_secs_f64().max(1e-9)
    );
}

/// The query workload for `efd serve`: an explicit file, or a synthetic
/// stream derived from the dataset.
fn serve_queries(args: &Args, d: &Dataset) -> Result<Vec<efd_core::Query>, String> {
    match (args.flag("queries"), args.flag_parsed::<usize>("synth")?) {
        (Some(path), None) => load_queries(path, d.catalog()),
        (None, Some(n)) => Ok(synth_queries(d, n.max(1))),
        (None, None) => Ok(synth_queries(d, 10_000)),
        (Some(_), Some(_)) => Err("--queries and --synth are mutually exclusive".into()),
    }
}

/// Synthesize a labeled learn stream from the dataset: cycle its runs
/// with small deterministic jitter (distinct from the query jitter seed,
/// so learning keeps adding fresh keys like a live cluster would).
fn synth_learn_stream(d: &Dataset, count: usize) -> Vec<efd_core::LabeledObservation> {
    let metric = headline(d);
    let sel = efd_telemetry::trace::MetricSelection::single(metric);
    let per_run: Vec<Vec<f64>> = d
        .window_means_all(&sel, efd_telemetry::Interval::PAPER_DEFAULT)
        .into_iter()
        .map(|nodes| nodes.into_iter().map(|m| m[0]).collect())
        .collect();
    let labels = d.labels();
    let mut rng = efd_util::SplitMix64::new(0x1EA2);
    (0..count)
        .map(|i| {
            let run = i % per_run.len();
            let means: Vec<f64> = per_run[run]
                .iter()
                .map(|m| m * (1.0 + (rng.next_f64() - 0.5) * 0.004))
                .collect();
            efd_core::LabeledObservation {
                label: labels[run].clone(),
                query: efd_core::Query::from_node_means(
                    metric,
                    efd_telemetry::Interval::PAPER_DEFAULT,
                    &means,
                ),
            }
        })
        .collect()
}

/// `efd serve --wal <dir>`: durable serving. Recover the directory (or
/// start fresh), optionally learn a synthetic stream write-ahead, then
/// answer the query batch from a published snapshot of the recovered
/// state.
fn cmd_serve_wal(args: &Args, dir: &str) -> Result<(), String> {
    use std::sync::Arc;
    use std::time::Instant;

    let d = dataset_from(args)?;
    let depth_raw: u8 = args.flag_parsed("depth")?.unwrap_or(2);
    let depth = efd_core::RoundingDepth::try_new(depth_raw)
        .ok_or_else(|| format!("invalid --depth {depth_raw} (1..=17)"))?;
    let sync_raw = args.flag("wal-sync").unwrap_or("batch");
    let sync = efd_core::SyncPolicy::parse(sync_raw)
        .ok_or_else(|| format!("invalid --wal-sync {sync_raw:?} (always|batch|none|<n>)"))?;
    let shards: usize = args.flag_parsed("shards")?.unwrap_or(8);
    let repeat: usize = args.flag_parsed("repeat")?.unwrap_or(1).max(1);
    let learn_n: usize = args.flag_parsed("learn")?.unwrap_or(0);

    let options = efd_core::wal::WalOptions {
        sync,
        ..Default::default()
    };
    let t = Instant::now();
    let (served, recovery) =
        efd_serve::DurableDictionary::open(std::path::Path::new(dir), depth, shards, d.catalog(), options)
            .map_err(|e| format!("{dir}: {e}"))?;
    let open_ms = t.elapsed().as_secs_f64() * 1e3;
    if let Some(fault) = &recovery.tail_fault {
        eprintln!(
            "warning: wal tail: {fault}; discarded {} bytes past the valid prefix",
            recovery.truncated_bytes
        );
    }
    println!(
        "recovered:  {dir} — segment {}, {} log records replayed, {:.2} ms (sync {sync_raw})",
        recovery.segments, recovery.replayed, open_ms,
    );

    let mut oracle = recovery.dictionary;
    if learn_n > 0 {
        let stream = synth_learn_stream(&d, learn_n);
        let t = Instant::now();
        for obs in &stream {
            served.learn(obs).map_err(|e| format!("{dir}: {e}"))?;
        }
        served.sync().map_err(|e| format!("{dir}: {e}"))?;
        let el = t.elapsed();
        println!(
            "learned:    {learn_n} observations write-ahead in {:.3} s → {:.0} learns/s",
            el.as_secs_f64(),
            learn_n as f64 / el.as_secs_f64().max(1e-9),
        );
        for obs in &stream {
            oracle.learn(obs);
        }
    }

    let live = served.dictionary();
    println!(
        "dictionary: {} entries, depth {}, {} shards (durable, write-ahead logged)",
        live.len(),
        live.depth(),
        live.shard_count(),
    );
    let snapshot = live.snapshot();
    println!("backend:    durable — served from a published snapshot of the live shards");

    let queries = serve_queries(args, &d)?;
    let elapsed = serve_batch(Arc::new(snapshot), &queries, repeat);
    serve_oracle(&oracle, &queries, repeat, elapsed);
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use std::sync::Arc;
    use std::time::Instant;

    if let Some(addr) = args.flag("listen") {
        return cmd_serve_listen(args, addr);
    }

    if let Some(dir) = args.flag("wal") {
        if args.flag("load").is_some() || args.flag("dict").is_some() {
            return Err("--wal and --load are mutually exclusive".into());
        }
        return cmd_serve_wal(args, dir);
    }

    if let Some(mpath) = args.flag("manifest") {
        if args.flag("load").is_some() || args.flag("dict").is_some() {
            return Err("--manifest and --load are mutually exclusive".into());
        }
        let d = dataset_from(args)?;
        let shards: usize = args.flag_parsed("shards")?.unwrap_or(8);
        let repeat: usize = args.flag_parsed("repeat")?.unwrap_or(1).max(1);
        let me = engine_from_manifest(Path::new(mpath), d.catalog(), shards)?;
        println!("manifest:   {mpath} — stack {}", me.stack.describe());
        for p in &me.provenance {
            println!("provenance: {p}");
        }
        println!("version:    {}", me.version.as_deref().unwrap_or("-"));
        let queries = serve_queries(args, &d)?;
        serve_batch(Arc::new(me.stack), &queries, repeat);
        return Ok(());
    }

    let backend_kind = ServeBackend::from_args(args)?;
    let dict_spec = match (args.flag("dict"), args.flag("load")) {
        (Some(p), None) | (None, Some(p)) => p,
        (Some(_), Some(_)) => return Err("--dict and --load are mutually exclusive".into()),
        (None, None) => {
            return Err(
                "need --load <dump.json|dict.efdb> or --wal <dir> (produce a dump with `efd dump`)"
                    .into(),
            )
        }
    };
    let shards: usize = args.flag_parsed("shards")?.unwrap_or(8);
    let repeat: usize = args.flag_parsed("repeat")?.unwrap_or(1).max(1);

    let d = dataset_from(args)?;
    let src = resolve_dict_source(dict_spec, args.flag("catalog"))?;
    let dict_path = src.shown.as_str();

    // Load the dictionary. An EFDB file is zero-parse decoded; a JSON
    // dump pays a text parse. The live `EfdDictionary` is always needed
    // (oracle comparison below, and it feeds the non-snapshot backends);
    // the snapshot fast path (decoded EFDB sections → snapshot, no
    // intermediate dictionary) is taken only when a snapshot is actually
    // being served.
    let raw = std::fs::read(&src.path).map_err(|e| format!("{dict_path}: {e}"))?;
    let is_efdb = raw.starts_with(&binfmt::MAGIC);
    let (dict, fast_snapshot) = if is_efdb {
        let t = Instant::now();
        // Decode failures report the structured BinFormatError plus the
        // file size, so a truncation is immediately diagnosable.
        let efdb = binfmt::read(&raw)
            .map_err(|e| format!("{dict_path}: {e} (file is {} bytes)", raw.len()))?;
        let decode = t.elapsed();
        if !efdb.matches_catalog(d.catalog()) {
            println!(
                "note:       writer's catalog digest differs; metrics resolved by name"
            );
        }
        let t = Instant::now();
        let snapshot = if backend_kind == ServeBackend::Snapshot {
            Some(
                efd_serve::Snapshot::from_efdb(&efdb, d.catalog(), shards)
                    .map_err(|e| format!("{dict_path}: {e}"))?,
            )
        } else {
            None
        };
        let build = t.elapsed();
        let parts = efdb
            .into_parts(d.catalog())
            .map_err(|e| format!("{dict_path}: {e}"))?;
        report_loaded(
            &src,
            &format!(
                "{} bytes efdb, decode {:.2} ms, snapshot {:.2} ms",
                raw.len(),
                decode.as_secs_f64() * 1e3,
                build.as_secs_f64() * 1e3,
            ),
        );
        (EfdDictionary::from_parts(parts), snapshot)
    } else {
        let text = std::str::from_utf8(&raw).map_err(|e| format!("{dict_path}: {e}"))?;
        let t = Instant::now();
        let dict = serialize::from_json(text, d.catalog()).map_err(|e| e.to_string())?;
        let parse = t.elapsed();
        report_loaded(
            &src,
            &format!(
                "{} bytes json, parse {:.2} ms",
                raw.len(),
                parse.as_secs_f64() * 1e3,
            ),
        );
        (dict, None)
    };

    let queries = serve_queries(args, &d)?;
    println!(
        "dictionary: {} entries, depth {}, {} labels, {} apps",
        dict.len(),
        dict.depth(),
        dict.label_count(),
        dict.app_names().len()
    );

    // Runtime backend selection through the engine API: every backend is
    // a `Recognize`, so the serving loop below is written once against
    // an `Arc<dyn Recognize + Send + Sync>`. Only the selected backend
    // is built.
    let engine: Arc<dyn Recognize + Send + Sync> = match backend_kind {
        ServeBackend::Snapshot => {
            let snapshot =
                fast_snapshot.unwrap_or_else(|| efd_serve::Snapshot::freeze(&dict, shards));
            let sizes = snapshot.shard_sizes();
            println!(
                "backend:    snapshot — {} shards, keys/shard min {} max {}",
                snapshot.shard_count(),
                sizes.iter().min().unwrap_or(&0),
                sizes.iter().max().unwrap_or(&0),
            );
            Arc::new(snapshot)
        }
        ServeBackend::Sharded => {
            let sharded = efd_serve::ShardedDictionary::from_parts(dict.to_parts(), shards);
            let sizes = sharded.shard_sizes();
            println!(
                "backend:    sharded — {} shards, keys/shard min {} max {}",
                sharded.shard_count(),
                sizes.iter().min().unwrap_or(&0),
                sizes.iter().max().unwrap_or(&0),
            );
            Arc::new(sharded)
        }
        ServeBackend::Combo => {
            let combo = efd_core::multi::ComboDictionary::from_single_metric(&dict)
                .ok_or("--backend combo needs a non-empty single-metric dictionary")?;
            println!("backend:    combo — {} conjunctive keys", combo.len());
            Arc::new(efd_serve::ComboSnapshot::freeze(combo))
        }
        ServeBackend::Efdb => {
            if !is_efdb {
                return Err(
                    "--backend efdb serves EFDB bytes in place; --load a .efdb file \
                     (a JSON dump has no binary form to map — convert it with `efd convert`)"
                        .into(),
                );
            }
            let t = Instant::now();
            let snapshot = efd_serve::EfdbSnapshot::load(raw, d.catalog())
                .map_err(|e| format!("{dict_path}: {e}"))?;
            println!(
                "backend:    efdb — zero-copy over {} bytes, {} keys, load {:.2} ms",
                snapshot.byte_len(),
                snapshot.len(),
                t.elapsed().as_secs_f64() * 1e3,
            );
            Arc::new(snapshot)
        }
    };

    let elapsed = serve_batch(engine, &queries, repeat);
    // Single-thread oracle loop over the same work, for the speedup line.
    serve_oracle(&dict, &queries, repeat, elapsed);
    Ok(())
}

/// Point a SIGHUP at the daemon's reload flag. The handler only stores
/// an atomic; the acceptor thread polls and performs the actual reload,
/// so nothing async-signal-unsafe runs in signal context.
#[cfg(unix)]
fn install_sighup(flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};
    static HUP_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    extern "C" fn on_hup(_sig: i32) {
        if let Some(f) = HUP_FLAG.get() {
            f.store(true, Ordering::SeqCst);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGHUP: i32 = 1;
    let _ = HUP_FLAG.set(flag);
    unsafe {
        signal(SIGHUP, on_hup);
    }
}

#[cfg(not(unix))]
fn install_sighup(_flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {}

/// `efd serve --listen <addr>`: the network daemon. Every backend of
/// the batch demo above, behind a socket: frame-protocol recognition
/// (one-shot and streaming), `/metrics` over HTTP on the same port,
/// SIGHUP / `SWAP` hot reload, graceful shutdown via `efd ctl`.
fn cmd_serve_listen(args: &Args, addr: &str) -> Result<(), String> {
    use efd_serve::net::{self, BackendKind};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let d = dataset_from(args)?;
    let shards: usize = args.flag_parsed("shards")?.unwrap_or(8);
    let backend_name = args.flag("backend").unwrap_or("snapshot");
    let backend = BackendKind::parse(backend_name).ok_or_else(|| {
        format!("unknown --backend {backend_name:?} (snapshot|sharded|combo|efdb)")
    })?;
    let mut cfg = net::ServerConfig::new(d.catalog().clone());
    cfg.workers = args.flag_parsed::<usize>("workers")?.unwrap_or(4).max(1);
    cfg.idle_timeout =
        Duration::from_secs(args.flag_parsed::<u64>("idle-timeout")?.unwrap_or(30).max(1));
    cfg.shards = shards;
    cfg.backend = backend;

    let engine = if let Some(mpath) = args.flag("manifest") {
        if args.flag("load").is_some() || args.flag("dict").is_some() || args.flag("wal").is_some()
        {
            return Err("--manifest and --load/--wal are mutually exclusive".into());
        }
        let mpath = std::path::PathBuf::from(mpath);
        let me = engine_from_manifest(&mpath, d.catalog(), shards)?;
        println!("manifest:   {} — stack {}", mpath.display(), me.stack.describe());
        for p in &me.provenance {
            println!("provenance: {p}");
        }
        // SWAP / SIGHUP rebuild the whole stack from the manifest file,
        // re-resolving `@latest` against the catalog — that is the hot
        // swap to a re-published version.
        cfg.reload_path = Some(mpath);
        let loader_catalog = d.catalog().clone();
        cfg.loader = Some(Arc::new(move |p: &std::path::Path| {
            engine_from_manifest(p, &loader_catalog, shards).map(manifest_net_engine)
        }));
        manifest_net_engine(me)
    } else if let Some(dir) = args.flag("wal") {
        if args.flag("load").is_some() || args.flag("dict").is_some() {
            return Err("--wal and --load are mutually exclusive".into());
        }
        let depth_raw: u8 = args.flag_parsed("depth")?.unwrap_or(2);
        let depth = efd_core::RoundingDepth::try_new(depth_raw)
            .ok_or_else(|| format!("invalid --depth {depth_raw} (1..=17)"))?;
        let sync_raw = args.flag("wal-sync").unwrap_or("batch");
        let sync = efd_core::SyncPolicy::parse(sync_raw)
            .ok_or_else(|| format!("invalid --wal-sync {sync_raw:?} (always|batch|none|<n>)"))?;
        let options = efd_core::wal::WalOptions {
            sync,
            ..Default::default()
        };
        let t = Instant::now();
        let (served, recovery) = efd_serve::DurableDictionary::open(
            std::path::Path::new(dir),
            depth,
            shards,
            d.catalog(),
            options,
        )
        .map_err(|e| format!("{dir}: {e}"))?;
        if let Some(fault) = &recovery.tail_fault {
            eprintln!(
                "warning: wal tail: {fault}; discarded {} bytes past the valid prefix",
                recovery.truncated_bytes
            );
        }
        println!(
            "recovered:  {dir} — segment {}, {} log records replayed, {:.2} ms",
            recovery.segments,
            recovery.replayed,
            t.elapsed().as_secs_f64() * 1e3,
        );
        net::Engine::durable(Arc::new(served))
    } else {
        let spec = match (args.flag("dict"), args.flag("load")) {
            (Some(p), None) | (None, Some(p)) => p,
            (Some(_), Some(_)) => return Err("--dict and --load are mutually exclusive".into()),
            (None, None) => {
                return Err(
                    "need --load <dump.json|dict.efdb> or --wal <dir> (produce a dump with `efd dump`)"
                        .into(),
                )
            }
        };
        let src = resolve_dict_source(spec, args.flag("catalog"))?;
        if let Some(p) = &src.provenance {
            println!("provenance: {p}");
        }
        cfg.reload_path = Some(src.path.clone());
        let mut engine = net::load_engine(&src.path, backend, d.catalog(), shards)?;
        if let Some(v) = src.version {
            engine = engine.with_version(v);
        }
        if let Some(b) = src.baseline {
            engine = engine.with_baseline(b);
        }
        engine
    };
    println!(
        "engine:     {} — {} keys (generation 1)",
        engine.kind, engine.keys
    );

    let workers = cfg.workers;
    let server = net::Server::start(addr, cfg, engine)?;
    install_sighup(server.hup_flag());
    println!(
        "listening:  {} — {workers} workers; GET /metrics and /healthz on the same port",
        server.local_addr()
    );
    println!(
        "control:    efd ctl <ping|stats|status|swap|shutdown|metrics> --addr {}",
        server.local_addr()
    );
    while server.running() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let summary = server.join();
    println!(
        "served:     {} requests over {} connections",
        summary.requests, summary.connections
    );
    Ok(())
}

/// Wall-clock seconds since the Unix epoch (artifact publish stamps).
fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Measure a dictionary's abstention baseline: replay a deterministic
/// labeled stream (the `synth_learn_stream` shape) through a snapshot of
/// the dictionary and record unknown/ambiguous rates plus macro-F1.
/// Published alongside the artifact, this is what the serve layer's
/// drift monitor compares live traffic against.
fn abstention_baseline(dict: &EfdDictionary, d: &Dataset, queries: usize) -> Baseline {
    use std::collections::BTreeMap;

    let stream = synth_learn_stream(d, queries.max(1));
    let snapshot = efd_serve::Snapshot::freeze(dict, 8);
    let mut scratch = efd_core::engine::VoteScratch::default();
    let (mut unknown, mut ambiguous) = (0usize, 0usize);
    // app -> (true positives, false positives, false negatives)
    let mut tally: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    for obs in &stream {
        let rec = snapshot.recognize_into(&obs.query, &mut scratch).normalized();
        let truth = obs.label.app.as_str();
        match &rec.verdict {
            efd_core::Verdict::Recognized(app) if app.as_str() == truth => {
                tally.entry(app.clone()).or_default().0 += 1;
            }
            efd_core::Verdict::Recognized(app) => {
                tally.entry(app.clone()).or_default().1 += 1;
                tally.entry(truth.to_string()).or_default().2 += 1;
            }
            efd_core::Verdict::Ambiguous(_) => {
                ambiguous += 1;
                tally.entry(truth.to_string()).or_default().2 += 1;
            }
            // `Unknown`, and any future verdict, is an abstention.
            _ => {
                unknown += 1;
                tally.entry(truth.to_string()).or_default().2 += 1;
            }
        }
    }
    let n = stream.len().max(1) as f64;
    let macro_f1 = if tally.is_empty() {
        0.0
    } else {
        tally
            .values()
            .map(|&(tp, fp, fneg)| {
                let denom = 2 * tp + fp + fneg;
                if denom == 0 {
                    0.0
                } else {
                    2.0 * tp as f64 / denom as f64
                }
            })
            .sum::<f64>()
            / tally.len() as f64
    };
    Baseline {
        queries: stream.len(),
        unknown_rate: unknown as f64 / n,
        ambiguous_rate: ambiguous as f64 / n,
        macro_f1,
    }
}

/// Where a dictionary operand's bytes live after resolution: a plain
/// file path, or a published catalog artifact — digest-verified and
/// resolved to its on-disk file, so daemon hot reload can re-read it.
struct DictSource {
    path: PathBuf,
    /// Display name for report lines: the canonical catalog ref, or the
    /// path as given.
    shown: String,
    /// Provenance line when the source is a published artifact.
    provenance: Option<String>,
    /// Catalog version ref and publish-time baseline (daemon surfaces).
    version: Option<String>,
    baseline: Option<efd_serve::net::DriftBaseline>,
}

/// Resolve a `--load`/`diff` operand. A string that parses as a catalog
/// reference (`name`, `name@latest`, `name@vN`) resolves against
/// `--catalog <dir>`; anything else is a file path. This is the one
/// resolution path shared by batch `serve --load`, the daemon, and
/// `efd diff`.
fn resolve_dict_source(spec: &str, catalog_dir: Option<&str>) -> Result<DictSource, String> {
    let reference = CatalogRef::parse(spec);
    if let Some(reference) = reference.filter(|_| catalog_dir.is_some() || spec.contains('@')) {
        let dir = catalog_dir.ok_or_else(|| {
            format!("{spec:?} is a catalog reference; pass --catalog <dir> to resolve it")
        })?;
        let cat = Catalog::open(dir).map_err(|e| e.to_string())?;
        let a = cat.resolve(&reference).map_err(|e| e.to_string())?;
        // Integrity check now; serving re-reads the same verified file.
        cat.read_bytes(a).map_err(|e| e.to_string())?;
        Ok(DictSource {
            path: cat.dir().join(&a.file),
            shown: a.artifact_ref(),
            provenance: Some(a.provenance()),
            version: Some(a.artifact_ref()),
            baseline: a.baseline.as_ref().map(|b| efd_serve::net::DriftBaseline {
                unknown_rate: b.unknown_rate,
                ambiguous_rate: b.ambiguous_rate,
            }),
        })
    } else {
        Ok(DictSource {
            path: PathBuf::from(spec),
            shown: spec.to_string(),
            provenance: None,
            version: None,
            baseline: None,
        })
    }
}

/// The uniform load report: every path that loads a dictionary announces
/// the source the same way and prints its catalog provenance when it has
/// one.
fn report_loaded(src: &DictSource, detail: &str) {
    println!("loaded:     {} — {detail}", src.shown);
    if let Some(p) = &src.provenance {
        println!("provenance: {p}");
    }
}

/// `efd catalog <publish|list|show|rollback> --dir <dir>`: the versioned
/// fingerprint-artifact store.
fn cmd_catalog(args: &Args) -> Result<(), String> {
    let action = args
        .positional
        .first()
        .ok_or("catalog needs an action (publish|list|show|rollback)")?;
    let dir = args.flag("dir").ok_or("need --dir <catalog-dir>")?;
    match action.as_str() {
        "publish" => {
            let name = args.flag("name").ok_or("need --name <artifact-name>")?;
            let from = args.flag("from").ok_or("need --from <dump.json|dict.efdb>")?;
            let d = dataset_from(args)?;
            let raw = std::fs::read(from).map_err(|e| format!("{from}: {e}"))?;
            let (dict, _) = decode_dict(&raw, d.catalog(), from)?;
            let baseline = match args.flag("baseline") {
                None | Some("auto") => {
                    let n: usize = args.flag_parsed("baseline-queries")?.unwrap_or(2000);
                    Some(abstention_baseline(&dict, &d, n))
                }
                Some("none") => None,
                Some(other) => return Err(format!("unknown --baseline {other:?} (auto|none)")),
            };
            let mut cat = Catalog::open(dir).map_err(|e| e.to_string())?;
            let a = cat
                .publish_dictionary(name, &dict, d.catalog(), from, unix_now(), baseline)
                .map_err(|e| e.to_string())?;
            println!("published:  {}", a.artifact_ref());
            println!("provenance: {}", a.provenance());
            Ok(())
        }
        "list" => {
            let cat = Catalog::open(dir).map_err(|e| e.to_string())?;
            if cat.artifacts().is_empty() {
                println!("catalog {dir} is empty");
                return Ok(());
            }
            let mut t = efd_util::table::TextTable::new(vec![
                "ref", "keys", "apps", "depth", "parent", "baseline", "status", "source",
            ]);
            for a in cat.artifacts() {
                let status = if a.retired {
                    "retired"
                } else if cat.latest(&a.name).map(|l| l.version) == Some(a.version) {
                    "latest"
                } else {
                    "live"
                };
                t.add_row(vec![
                    a.artifact_ref(),
                    a.keys.to_string(),
                    a.apps.to_string(),
                    a.depth.to_string(),
                    a.parent.map_or("-".to_string(), |p| format!("v{p}")),
                    a.baseline.as_ref().map_or("-".to_string(), |b| {
                        format!("unk {:.3} amb {:.3}", b.unknown_rate, b.ambiguous_rate)
                    }),
                    status.to_string(),
                    a.source.clone(),
                ]);
            }
            println!("{}", t.render());
            Ok(())
        }
        "show" => {
            let spec = args
                .positional
                .get(1)
                .ok_or("show needs a reference (name, name@latest, name@vN)")?;
            let r = CatalogRef::parse(spec)
                .ok_or_else(|| format!("invalid catalog reference {spec:?}"))?;
            let cat = Catalog::open(dir).map_err(|e| e.to_string())?;
            let a = cat.resolve(&r).map_err(|e| e.to_string())?;
            println!("provenance: {}", a.provenance());
            println!(
                "file:       {} (published at unix {})",
                cat.dir().join(&a.file).display(),
                a.created_unix
            );
            let bytes = cat.read_bytes(a).map_err(|e| e.to_string())?;
            println!(
                "integrity:  ok — {} bytes, digest {:016x}, metric catalog {:016x}",
                bytes.len(),
                a.digest,
                a.catalog_digest
            );
            Ok(())
        }
        "rollback" => {
            let name = args.positional.get(1).ok_or("rollback needs a name")?;
            let mut cat = Catalog::open(dir).map_err(|e| e.to_string())?;
            let (retired, now_latest) = cat.rollback(name).map_err(|e| e.to_string())?;
            println!(
                "rolled back: {name}@v{retired} retired; @latest is {}",
                now_latest.map_or("gone".to_string(), |v| format!("v{v}")),
            );
            Ok(())
        }
        other => Err(format!(
            "unknown catalog action {other:?} (publish|list|show|rollback)"
        )),
    }
}

/// Render the structural diff as the human table report.
fn render_diff_table(label_a: &str, label_b: &str, r: &efd_core::diff::DictDiff) -> String {
    let mut out = String::new();
    out.push_str(&format!("diff:       {label_a} -> {label_b}\n"));
    out.push_str(&format!("depth:      {} -> {}\n", r.depth_a, r.depth_b));
    out.push_str(&format!(
        "keys:       {} -> {} ({:+})\n",
        r.keys_a,
        r.keys_b,
        r.keys_b as i64 - r.keys_a as i64
    ));
    out.push_str(&format!(
        "changes:    {} added, {} removed, {} relabelled\n",
        r.added, r.removed, r.relabelled
    ));
    out.push_str(&format!(
        "divergence: {} of {} sampled verdicts differ\n",
        r.divergence.diverged, r.divergence.sampled
    ));
    if !r.coverage.is_empty() {
        let mut t = efd_util::table::TextTable::new(vec!["app", "keys A", "keys B", "delta"])
            .with_title("coverage (keys voting per app)");
        for c in &r.coverage {
            t.add_row(vec![
                c.app.clone(),
                c.keys_a.to_string(),
                c.keys_b.to_string(),
                format!("{:+}", c.delta()),
            ]);
        }
        out.push_str(&t.render());
        if !out.ends_with('\n') {
            out.push('\n');
        }
    }
    for key in &r.added_examples {
        out.push_str(&format!("  + {key}\n"));
    }
    for key in &r.removed_examples {
        out.push_str(&format!("  - {key}\n"));
    }
    for e in &r.relabel_examples {
        out.push_str(&format!(
            "  ~ {}: [{}] -> [{}]\n",
            e.key,
            e.labels_a.join(", "),
            e.labels_b.join(", ")
        ));
    }
    for e in &r.divergence.examples {
        out.push_str(&format!("  ! {}: {} -> {}\n", e.key, e.verdict_a, e.verdict_b));
    }
    out.push_str(&format!(
        "verdict:    semantically {}\n",
        if r.semantically_equal() { "equal" } else { "different" }
    ));
    out
}

/// Render the structural diff as machine-readable JSON.
fn render_diff_json(label_a: &str, label_b: &str, r: &efd_core::diff::DictDiff) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"a\": \"{}\",\n  \"b\": \"{}\",\n",
        esc(label_a),
        esc(label_b)
    ));
    out.push_str(&format!(
        "  \"depth\": {{ \"a\": {}, \"b\": {} }},\n",
        r.depth_a, r.depth_b
    ));
    out.push_str(&format!(
        "  \"keys\": {{ \"a\": {}, \"b\": {} }},\n",
        r.keys_a, r.keys_b
    ));
    out.push_str(&format!(
        "  \"added\": {}, \"removed\": {}, \"relabelled\": {},\n",
        r.added, r.removed, r.relabelled
    ));
    out.push_str(&format!(
        "  \"divergence\": {{ \"sampled\": {}, \"diverged\": {} }},\n",
        r.divergence.sampled, r.divergence.diverged
    ));
    out.push_str("  \"coverage\": [\n");
    for (i, c) in r.coverage.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"app\": \"{}\", \"keys_a\": {}, \"keys_b\": {}, \"delta\": {} }}{}\n",
            esc(&c.app),
            c.keys_a,
            c.keys_b,
            c.delta(),
            if i + 1 < r.coverage.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"semantically_equal\": {}\n}}\n",
        r.semantically_equal()
    ));
    out
}

/// `efd diff <A> <B>`: structural dictionary diff over any two artifacts
/// (files or catalog refs). Returns whether the sides are semantically
/// different — `main` maps `true` to exit code 3, keeping exit 1 for
/// errors.
fn cmd_diff(args: &Args) -> Result<bool, String> {
    let (a_spec, b_spec) = match (args.positional.first(), args.positional.get(1)) {
        (Some(a), Some(b)) => (a.as_str(), b.as_str()),
        _ => {
            return Err(
                "diff needs two artifacts: <A> <B> (file paths, or catalog refs with --catalog <dir>)"
                    .into(),
            )
        }
    };
    let json = match args.flag("format") {
        None | Some("table") => false,
        Some("json") => true,
        Some(other) => return Err(format!("unknown --format {other:?} (table|json)")),
    };
    let mut opts = efd_core::diff::DiffOptions::default();
    if let Some(s) = args.flag_parsed::<usize>("samples")? {
        opts.samples = s;
    }
    let d = dataset_from(args)?;
    let catalog = d.catalog();
    let load = |spec: &str| -> Result<(EfdDictionary, DictSource), String> {
        let src = resolve_dict_source(spec, args.flag("catalog"))?;
        let raw = std::fs::read(&src.path).map_err(|e| format!("{}: {e}", src.path.display()))?;
        let (dict, _) = decode_dict(&raw, catalog, &src.shown)?;
        Ok((dict, src))
    };
    let (da, sa) = load(a_spec)?;
    let (db, sb) = load(b_spec)?;
    let r = efd_core::diff::diff(&da, &db, catalog, &opts);
    if json {
        print!("{}", render_diff_json(&sa.shown, &sb.shown, &r));
    } else {
        for s in [&sa, &sb] {
            if let Some(p) = &s.provenance {
                println!("provenance: {p}");
            }
        }
        print!("{}", render_diff_table(&sa.shown, &sb.shown, &r));
    }
    Ok(!r.semantically_equal())
}

/// A manifest-stacked engine, built (and rebuilt on hot reload) from one
/// `recognizer.v1` file.
struct ManifestEngine {
    stack: efd_serve::StackedRecognizer,
    /// Primary stage's key count (status lines).
    keys: usize,
    version: Option<String>,
    baseline: Option<efd_serve::net::DriftBaseline>,
    provenance: Vec<String>,
}

/// Rebuild a labeled training stream from a dictionary's own entries —
/// how an ml fallback stage learns the knowledge the exact stages serve
/// (one single-point observation per key-label pair).
fn dictionary_observations(dict: &EfdDictionary) -> Vec<efd_core::LabeledObservation> {
    let mut out = Vec::new();
    for (fp, labels) in dict.entries() {
        for l in labels {
            out.push(efd_core::LabeledObservation {
                label: (*l).clone(),
                query: efd_core::Query {
                    points: vec![efd_core::observation::ObsPoint {
                        metric: fp.metric,
                        node: fp.node,
                        interval: fp.interval,
                        mean: fp.mean(),
                    }],
                },
            });
        }
    }
    out
}

/// Build the stacked engine a manifest declares. Every stage's artifact
/// resolves through the manifest's catalog (or a file path relative to
/// the manifest); the served version and drift baseline come from the
/// primary stage's artifact record.
fn engine_from_manifest(
    path: &Path,
    catalog: &efd_telemetry::MetricCatalog,
    shards: usize,
) -> Result<ManifestEngine, String> {
    use efd_core::engine::Learn as _;
    use std::sync::Arc;

    let m = Manifest::load(path).map_err(|e| e.to_string())?;
    let cat = match &m.catalog_dir {
        Some(dir) => Some(Catalog::open(dir.clone()).map_err(|e| e.to_string())?),
        None => None,
    };
    let mut stages = Vec::new();
    let mut provenance = Vec::new();
    let mut version = Some(m.name.clone());
    let mut baseline = None;
    let mut keys = 0usize;
    for (i, stage) in m.stack.iter().enumerate() {
        let reference = CatalogRef::parse(&stage.artifact);
        let (raw, shown, artifact) = match (&cat, reference) {
            (Some(cat), Some(r)) => {
                let a = cat.resolve(&r).map_err(|e| e.to_string())?;
                (
                    cat.read_bytes(a).map_err(|e| e.to_string())?,
                    a.artifact_ref(),
                    Some(a),
                )
            }
            _ => {
                let p = if Path::new(&stage.artifact).is_relative() {
                    path.parent().unwrap_or(Path::new(".")).join(&stage.artifact)
                } else {
                    PathBuf::from(&stage.artifact)
                };
                (
                    std::fs::read(&p).map_err(|e| format!("{}: {e}", p.display()))?,
                    stage.artifact.clone(),
                    None,
                )
            }
        };
        let (dict, _) = decode_dict(&raw, catalog, &shown)?;
        if i == 0 {
            keys = dict.len();
            if let Some(a) = artifact {
                version = Some(a.artifact_ref());
                baseline = a.baseline.as_ref().map(|b| efd_serve::net::DriftBaseline {
                    unknown_rate: b.unknown_rate,
                    ambiguous_rate: b.ambiguous_rate,
                });
            }
        }
        if let Some(a) = artifact {
            provenance.push(a.provenance());
        }
        let engine: Arc<dyn Recognize + Send + Sync> = match &stage.backend {
            StageBackend::Exact => Arc::new(efd_serve::Snapshot::freeze(&dict, shards)),
            StageBackend::Efdb => {
                // Zero-copy wants canonical EFDB bytes; re-encode when
                // the artifact was a JSON dump.
                let bytes = if raw.starts_with(&binfmt::MAGIC) {
                    raw.clone()
                } else {
                    binfmt::write_dictionary(&dict, catalog)
                };
                Arc::new(
                    efd_serve::EfdbSnapshot::load(bytes, catalog)
                        .map_err(|e| format!("{shown}: {e}"))?,
                )
            }
            StageBackend::Sharded => {
                Arc::new(efd_serve::ShardedDictionary::from_parts(dict.to_parts(), shards))
            }
            StageBackend::Combo => {
                let combo = efd_core::multi::ComboDictionary::from_single_metric(&dict)
                    .ok_or_else(|| {
                        format!("{shown}: combo stage needs a non-empty single-metric dictionary")
                    })?;
                Arc::new(efd_serve::ComboSnapshot::freeze(combo))
            }
            StageBackend::Knn { k } => {
                let mut ml = MlBackend::knn(*k, stage.min_confidence);
                for obs in dictionary_observations(&dict) {
                    ml.learn(&obs);
                }
                Arc::new(ml)
            }
            StageBackend::GaussianNb => {
                let mut ml = MlBackend::gaussian_nb(stage.min_confidence);
                for obs in dictionary_observations(&dict) {
                    ml.learn(&obs);
                }
                Arc::new(ml)
            }
        };
        stages.push(efd_serve::StackedStage {
            name: stage.backend.to_string(),
            engine,
            min_confidence: stage.min_confidence,
        });
    }
    Ok(ManifestEngine {
        stack: efd_serve::StackedRecognizer::new(stages),
        keys,
        version,
        baseline,
        provenance,
    })
}

/// Wrap a built manifest stack as the daemon's engine.
fn manifest_net_engine(me: ManifestEngine) -> efd_serve::net::Engine {
    let mut e = efd_serve::net::Engine::fixed(std::sync::Arc::new(me.stack), me.keys, "stacked");
    if let Some(v) = me.version {
        e = e.with_version(v);
    }
    if let Some(b) = me.baseline {
        e = e.with_baseline(b);
    }
    e
}

/// `efd loadgen --addr <a>`: drive a running daemon and report latency
/// percentiles (optionally into `BENCH_8.json`).
fn cmd_loadgen(args: &Args) -> Result<(), String> {
    use efd_serve::net::loadgen::{run, LoadgenConfig};
    use std::time::Duration;

    let addr = args.flag("addr").ok_or("need --addr <host:port>")?;
    let mut cfg = LoadgenConfig::new(addr);
    if let Some(n) = args.flag_parsed::<usize>("conns")? {
        cfg.connections = n.max(1);
    }
    let secs: f64 = args.flag_parsed("duration")?.unwrap_or(5.0);
    if secs <= 0.0 || !secs.is_finite() {
        return Err(format!("invalid --duration {secs} (seconds, > 0)"));
    }
    cfg.duration = Duration::from_secs_f64(secs);
    cfg.target_qps = args.flag_parsed::<u64>("qps")?;
    if let Some(p) = args.flag_parsed::<usize>("pipeline")? {
        cfg.pipeline = p.max(1);
    }
    let pool: usize = args.flag_parsed("requests")?.unwrap_or(512).max(1);

    // The request mix: PINGs (protocol floor), a synthetic keyspace mix
    // (matches `dump --synth-keys N`), or dataset-derived queries (the
    // same stream `serve --synth` answers).
    cfg.payloads = if matches!(args.flag("ping"), Some("true") | Some("1")) {
        vec!["PING".to_string()]
    } else if let Some(keys) = args.flag_parsed::<usize>("keyspace")? {
        let d = dataset_from(args)?;
        let name = d.catalog().name(headline(&d)).to_string();
        synth_keyspace_payloads(&name, keys, pool)
    } else {
        let d = dataset_from(args)?;
        let name = d.catalog().name(headline(&d)).to_string();
        synth_queries(&d, pool)
            .iter()
            .map(|q| render_recognize_line(&name, q))
            .collect()
    };

    println!(
        "loadgen:    {} — {} conns, {:.1} s, pipeline {}, {}",
        cfg.addr,
        cfg.connections,
        secs,
        cfg.pipeline,
        match cfg.target_qps {
            Some(q) => format!("paced at {q} req/s"),
            None => "unpaced (max rate)".to_string(),
        },
    );
    let report = run(&cfg)?;
    let us = |s: f64| s * 1e6;
    println!(
        "throughput: {} responses in {:.1} s → {:.0} verdicts/s ({} sent, {} errors)",
        report.received,
        report.duration.as_secs_f64(),
        report.qps,
        report.sent,
        report.errors,
    );
    println!(
        "verdicts:   {} recognized, {} ambiguous, {} unknown",
        report.verdicts[0], report.verdicts[1], report.verdicts[2],
    );
    println!(
        "latency:    p50 {:.0} µs, p90 {:.0} µs, p99 {:.0} µs, p99.9 {:.0} µs, max {:.0} µs",
        us(report.latency.p50),
        us(report.latency.p90),
        us(report.latency.p99),
        us(report.latency.p999),
        us(report.latency.max),
    );

    if let Some(out) = args.flag("out") {
        let body = format!(
            "{{\n  \"bench\": \"loadgen\",\n  \"config\": {{ \"addr\": \"{}\", \"connections\": {}, \
             \"duration_s\": {:.1}, \"qps_target\": {}, \"pipeline\": {}, \"payload_pool\": {} }},\n  \
             \"sent\": {},\n  \"received\": {},\n  \"errors\": {},\n  \
             \"verdicts\": {{ \"recognized\": {}, \"ambiguous\": {}, \"unknown\": {} }},\n  \
             \"verdicts_per_s\": {:.1},\n  \
             \"latency_us\": {{ \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}, \"max\": {:.1} }}\n}}\n",
            cfg.addr,
            cfg.connections,
            secs,
            cfg.target_qps.map_or("null".to_string(), |q| q.to_string()),
            cfg.pipeline,
            cfg.payloads.len(),
            report.sent,
            report.received,
            report.errors,
            report.verdicts[0],
            report.verdicts[1],
            report.verdicts[2],
            report.qps,
            us(report.latency.p50),
            us(report.latency.p90),
            us(report.latency.p99),
            us(report.latency.p999),
            us(report.latency.max),
        );
        std::fs::write(out, &body).map_err(|e| format!("write {out}: {e}"))?;
        println!("wrote:      {out}");
    }
    Ok(())
}

/// Render one RECOGNIZE request line for a single-metric query.
fn render_recognize_line(metric_name: &str, q: &efd_core::Query) -> String {
    let iv = q.points.first().map(|p| p.interval).unwrap_or(efd_telemetry::Interval::PAPER_DEFAULT);
    let mut s = format!("RECOGNIZE {metric_name} {} {}", iv.start, iv.end);
    for p in &q.points {
        s.push_str(&format!(" {}", p.mean));
    }
    s
}

/// `efd ctl <action> --addr <a>`: one-shot daemon control — speaks one
/// protocol request (or one HTTP scrape for `metrics`) and prints the
/// response. Exits nonzero on an `ERR` response.
fn cmd_ctl(args: &Args) -> Result<(), String> {
    use efd_serve::net::protocol::{write_frame, FrameError, FrameReader};
    use std::io::{Read, Write};
    use std::time::{Duration, Instant};

    let action = args
        .positional
        .first()
        .ok_or("ctl needs an action (ping|stats|status|swap|shutdown|metrics)")?;
    let addr = args.flag("addr").ok_or("need --addr <host:port>")?;
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .map_err(|e| e.to_string())?;

    if action == "metrics" {
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: efd\r\nConnection: close\r\n\r\n")
            .map_err(|e| format!("{addr}: {e}"))?;
        let mut raw = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut buf = [0u8; 4096];
        while Instant::now() < deadline {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => return Err(format!("{addr}: {e}")),
            }
        }
        let text = String::from_utf8_lossy(&raw);
        let (head, body) = text
            .split_once("\r\n\r\n")
            .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
        let status = head.lines().next().unwrap_or("");
        if !status.contains("200") {
            return Err(format!("{addr}: {status}"));
        }
        print!("{body}");
        return Ok(());
    }

    let line = match action.as_str() {
        "ping" => "PING".to_string(),
        "stats" => "STATS".to_string(),
        "status" => "STATUS".to_string(),
        "shutdown" => "SHUTDOWN".to_string(),
        "swap" => match args.flag("path") {
            Some(p) => format!("SWAP {p}"),
            None => "SWAP".to_string(),
        },
        other => {
            return Err(format!(
                "unknown ctl action {other:?} (ping|stats|status|swap|shutdown|metrics)"
            ))
        }
    };
    write_frame(&mut stream, line.as_bytes()).map_err(|e| format!("{addr}: {e}"))?;
    let mut reader = FrameReader::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match reader.read_frame(&mut stream) {
            Ok(Some(payload)) => {
                let text = String::from_utf8_lossy(payload).to_string();
                println!("{text}");
                if text.starts_with("ERR ") {
                    return Err(format!("{addr}: daemon refused: {text}"));
                }
                return Ok(());
            }
            Ok(None) => return Err(format!("{addr}: daemon closed without answering")),
            Err(FrameError::Timeout) => {
                if Instant::now() >= deadline {
                    return Err(format!("{addr}: timed out waiting for a response"));
                }
            }
            Err(e) => return Err(format!("{addr}: {e}")),
        }
    }
}

/// `efd compact --wal <dir> [--out <path>]`: merge a WAL directory's
/// newest segment + log tail into one canonical EFDB segment.
fn cmd_compact(args: &Args) -> Result<(), String> {
    let dir = args.flag("wal").ok_or("need --wal <dir>")?;
    let d = dataset_from(args)?;
    let report = efd_core::wal::compact_in_place(std::path::Path::new(dir), d.catalog())
        .map_err(|e| format!("{dir}: {e}"))?;
    println!(
        "compacted:  {dir} — {} log records folded in, {} superseded segment(s) removed",
        report.replayed, report.removed,
    );
    println!(
        "segment:    {} — {} keys (canonical EFDB)",
        report.segment.display(),
        report.keys,
    );
    if let Some(out) = args.flag("out") {
        std::fs::copy(&report.segment, out).map_err(|e| format!("write {out}: {e}"))?;
        println!("wrote:      {out} (byte-identical to the compacted segment)");
    }
    Ok(())
}

/// `efd wal-verify --wal <dir> [--strict true]`: audit a WAL directory
/// offline — header, record scan, segment resolution — reporting the
/// valid prefix and any tail fault with its byte offset. Hard errors
/// (bad header, missing/corrupt segment) always exit nonzero; tail
/// faults are tolerated (truncate-and-warn is the recovery contract)
/// unless `--strict true`.
fn cmd_wal_verify(args: &Args) -> Result<(), String> {
    use efd_core::wal;

    let dir = args.flag("wal").ok_or("need --wal <dir>")?;
    let strict = matches!(args.flag("strict"), Some("true") | Some("1"));
    let d = dataset_from(args)?;

    let log_path = format!("{dir}/{}", wal::LOG_FILE);
    let bytes = std::fs::read(&log_path).map_err(|e| format!("{log_path}: {e}"))?;
    let replay = wal::read_log(&bytes).map_err(|e| format!("{log_path}: {e}"))?;
    let (mut learns, mut forgets) = (0usize, 0usize);
    for rec in &replay.records {
        match rec {
            wal::WalRecord::Learn(_) => learns += 1,
            _ => forgets += 1,
        }
    }
    println!(
        "wal:        {log_path} — {} bytes, depth {}, requires segment {}",
        bytes.len(),
        replay.depth.get(),
        replay.base_segments,
    );
    println!(
        "records:    {} valid ({learns} learns, {forgets} forgets), valid prefix {} bytes",
        replay.records.len(),
        replay.valid_len,
    );

    let recovery = wal::recover(std::path::Path::new(dir), d.catalog())
        .map_err(|e| format!("{dir}: {e}"))?;
    println!(
        "segments:   newest {} on disk (log requires {})",
        recovery.segments, replay.base_segments,
    );
    println!(
        "recovered:  {} keys, {} apps, depth {}",
        recovery.dictionary.len(),
        recovery.dictionary.app_names().len(),
        recovery.dictionary.depth(),
    );
    match &recovery.tail_fault {
        None => println!("tail:       clean"),
        Some(fault) => {
            println!(
                "tail:       {fault} ({} bytes past the valid prefix discarded on recovery)",
                recovery.truncated_bytes
            );
            if strict {
                return Err(format!("{log_path}: {fault}"));
            }
        }
    }
    Ok(())
}

/// The shared synthetic keyspace: key `i` is `(headline metric,
/// node i % 64, [60:120], mean 100_000 + i)` labeled `app{i%50}/X` at
/// rounding depth 6 (sequential means stay distinct). `bench-snapshot`,
/// `dump --synth-keys`, and `loadgen --keyspace` all derive from this
/// one shape, so a loadgen against a `--synth-keys` EFDB hits real keys
/// by construction.
fn synth_keyspace_dict(keys: usize, metric: efd_telemetry::MetricId) -> EfdDictionary {
    let mut dict = EfdDictionary::new(efd_core::RoundingDepth::new(6));
    for i in 0..keys {
        dict.insert_raw(
            metric,
            efd_telemetry::NodeId((i % 64) as u16),
            efd_telemetry::Interval::PAPER_DEFAULT,
            100_000.0 + i as f64,
            &efd_telemetry::AppLabel::new(format!("app{:03}", i % 50), "X"),
        );
    }
    dict
}

/// RECOGNIZE request lines over the synthetic keyspace: 8-node queries
/// aligned to 64-key node blocks (so every point lands on its node's
/// keys), with ~9% of blocks drawn past the keyspace end as misses.
fn synth_keyspace_payloads(metric_name: &str, keys: usize, count: usize) -> Vec<String> {
    let blocks = (keys / 64).max(1);
    let mut rng = efd_util::SplitMix64::new(0x10AD);
    (0..count.max(1))
        .map(|_| {
            let r = (rng.next_u64() as usize) % (blocks + blocks / 10 + 1);
            let i0 = r * 64;
            let mut s = format!("RECOGNIZE {metric_name} 60 120");
            for j in 0..8 {
                s.push_str(&format!(" {}", 100_000.0 + (i0 + j) as f64));
            }
            s
        })
        .collect()
}

/// `efd bench-snapshot [--out BENCH_7.json]`: time the persistence,
/// durability, and serving-cold-start hot paths and write a
/// machine-readable snapshot (bench name, config, ns/op, throughput)
/// for trend tracking.
fn cmd_bench_snapshot(args: &Args) -> Result<(), String> {
    use std::time::Instant;

    let out = args.flag("out").unwrap_or("BENCH_7.json");
    let keys: usize = args.flag_parsed("keys")?.unwrap_or(10_000);
    let records: usize = args.flag_parsed("records")?.unwrap_or(2_000);
    let reps: usize = args.flag_parsed("reps")?.unwrap_or(3).max(1);
    let d = dataset_from(args)?;
    let catalog = d.catalog();
    let metric = headline(&d);
    let metric_name = catalog.name(metric);

    // The shared synthetic keyspace (see `synth_keyspace_dict`),
    // mirroring the perf_persistence bench shape.
    let depth = efd_core::RoundingDepth::new(6);
    let dict = synth_keyspace_dict(keys, metric);

    let best_of = |mut f: Box<dyn FnMut() -> usize>| -> (f64, usize) {
        let mut best = f64::INFINITY;
        let mut ops = 0;
        for _ in 0..reps {
            let t = Instant::now();
            ops = f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        (best, ops)
    };
    let mut legs: Vec<(String, &str, f64, usize)> = Vec::new();

    // Leg 1/2: full-dump persistence (JSON parse vs EFDB zero-parse load).
    let json = serialize::to_json(&dict, catalog);
    let (secs, _) = best_of(Box::new({
        let json = json.clone();
        let catalog = catalog.clone();
        move || {
            std::hint::black_box(serialize::from_json(&json, &catalog).expect("own dump parses"));
            1
        }
    }));
    legs.push(("persistence_json_parse".into(), "dicts", secs, 1));
    let efdb = binfmt::write_dictionary(&dict, catalog);
    let (secs, _) = best_of(Box::new({
        let efdb = efdb.clone();
        let catalog = catalog.clone();
        move || {
            std::hint::black_box(binfmt::read_dictionary(&efdb, &catalog).expect("own efdb reads"));
            1
        }
    }));
    legs.push(("persistence_efdb_load".into(), "dicts", secs, 1));

    // Serving cold start over the same canonical bytes: the owned path
    // (decode every section, rebuild shard maps) vs the zero-copy path
    // (validate once, serve in place). The gap is the point of
    // `EfdbSnapshot` — it must not scale with key count.
    let (secs, _) = best_of(Box::new({
        let efdb = efdb.clone();
        let catalog = catalog.clone();
        move || {
            let parsed = binfmt::read(&efdb).expect("own efdb reads");
            std::hint::black_box(
                efd_serve::Snapshot::from_efdb(&parsed, &catalog, 8)
                    .expect("own efdb freezes")
                    .len(),
            );
            1
        }
    }));
    legs.push(("snapshot_coldstart".into(), "loads", secs, 1));
    let arc_bytes: std::sync::Arc<[u8]> = efdb.clone().into();
    let (secs, _) = best_of(Box::new({
        let arc_bytes = std::sync::Arc::clone(&arc_bytes);
        let catalog = catalog.clone();
        move || {
            std::hint::black_box(
                efd_serve::EfdbSnapshot::load(std::sync::Arc::clone(&arc_bytes), &catalog)
                    .expect("own efdb checks")
                    .len(),
            );
            1
        }
    }));
    legs.push(("efdb_coldstart".into(), "loads", secs, 1));

    // Hot single-query path over both stores: 8-point queries, ~10%
    // misses, one reused scratch — the acceptance gate is the zero-copy
    // store staying within striking distance of the owned one.
    let owned = std::sync::Arc::new(
        efd_serve::Snapshot::from_efdb(&binfmt::read(&efdb).expect("own efdb reads"), catalog, 8)
            .map_err(|e| e.to_string())?,
    );
    let zero_copy = std::sync::Arc::new(
        efd_serve::EfdbSnapshot::load(std::sync::Arc::clone(&arc_bytes), catalog)
            .map_err(|e| e.to_string())?,
    );
    let hot_queries: std::sync::Arc<Vec<efd_core::Query>> = {
        let mut rng = efd_util::SplitMix64::new(0xEFD7);
        std::sync::Arc::new(
            (0..4096)
                .map(|_| efd_core::Query {
                    points: (0..8)
                        .map(|_| {
                            let i = (rng.next_u64() as usize) % (keys + keys / 10);
                            efd_core::observation::ObsPoint {
                                metric,
                                node: efd_telemetry::NodeId((i % 64) as u16),
                                interval: efd_telemetry::Interval::PAPER_DEFAULT,
                                mean: 100_000.0 + i as f64,
                            }
                        })
                        .collect(),
                })
                .collect(),
        )
    };
    {
        // Answers must agree before the numbers mean anything.
        let mut scratch = efd_core::engine::VoteScratch::default();
        for q in hot_queries.iter().take(128) {
            let a = owned.recognize_into(q, &mut scratch);
            let b = zero_copy.recognize_into(q, &mut scratch);
            if a != b {
                return Err("owned and zero-copy stores disagree on the bench query mix".into());
            }
        }
    }
    for (name, engine) in [
        ("owned_hot_query", std::sync::Arc::clone(&owned) as std::sync::Arc<dyn Recognize + Send + Sync>),
        ("zero_copy_hot_query", zero_copy as std::sync::Arc<dyn Recognize + Send + Sync>),
    ] {
        let (secs, ops) = best_of(Box::new({
            let qs = std::sync::Arc::clone(&hot_queries);
            move || {
                let mut scratch = efd_core::engine::VoteScratch::default();
                let mut matched = 0usize;
                for q in qs.iter() {
                    matched += engine.recognize_into(q, &mut scratch).matched_points;
                }
                std::hint::black_box(matched);
                qs.len()
            }
        }));
        legs.push((name.into(), "queries", secs, ops));
    }
    drop(owned);

    // Leg: WAL append throughput and cold-start recovery replay.
    let stream: Vec<efd_core::wal::WalRecord> = (0..records)
        .map(|i| {
            efd_core::wal::WalRecord::Learn(efd_core::wal::LearnRecord {
                app: format!("app{:03}", i % 50),
                input: "X".into(),
                points: vec![efd_core::wal::WalPoint {
                    metric: metric_name.to_string(),
                    node: (i % 64) as u16,
                    start: 60,
                    end: 120,
                    mean_bits: (200_000.0 + i as f64).to_bits(),
                }],
            })
        })
        .collect();
    let wal_dir = std::env::temp_dir().join(format!("efd-bench-wal-{}", std::process::id()));
    let mut best_append = f64::INFINITY;
    for _ in 0..reps {
        let _ = std::fs::remove_dir_all(&wal_dir);
        let (mut wal, _) = efd_core::wal::WalDir::open(
            &wal_dir,
            depth,
            catalog,
            efd_core::wal::WalOptions {
                sync: efd_core::SyncPolicy::EveryN(32),
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?;
        let t = Instant::now();
        for rec in &stream {
            wal.append(rec).map_err(|e| e.to_string())?;
        }
        wal.sync().map_err(|e| e.to_string())?;
        best_append = best_append.min(t.elapsed().as_secs_f64());
    }
    legs.push(("wal_append".into(), "records", best_append, records));
    let (secs, _) = best_of(Box::new({
        let wal_dir = wal_dir.clone();
        let catalog = catalog.clone();
        move || {
            let rec = efd_core::wal::recover(&wal_dir, &catalog).expect("bench wal recovers");
            std::hint::black_box(rec.dictionary.len());
            rec.replayed
        }
    }));
    legs.push(("recovery_replay".into(), "records", secs, records));
    let _ = std::fs::remove_dir_all(&wal_dir);

    let mut body = String::new();
    body.push_str("{\n  \"bench\": \"bench-snapshot\",\n");
    body.push_str(&format!(
        "  \"config\": {{ \"keys\": {keys}, \"records\": {records}, \"reps\": {reps}, \"sync\": \"batch(32)\" }},\n"
    ));
    body.push_str("  \"legs\": [\n");
    for (i, (name, unit, secs, ops)) in legs.iter().enumerate() {
        let ns_per_op = secs * 1e9 / (*ops as f64).max(1.0);
        let per_s = *ops as f64 / secs.max(1e-12);
        body.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"ops\": {ops}, \"unit\": \"{unit}\", \
             \"ns_per_op\": {ns_per_op:.1}, \"ops_per_s\": {per_s:.1} }}{}\n",
            if i + 1 < legs.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(out, &body).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}:");
    print!("{body}");
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let out = args.flag("out").unwrap_or("EXPERIMENTS.md");
    let d = dataset_from(args)?;
    let results = run_all_experiments(&d, taxonomist_cfg(args)?);
    eprintln!("screening all metrics…");
    let scores = screen_metrics(&d, &EvalOptions::default(), None);
    let md = report::experiments_markdown(&results, &scores, &d);
    std::fs::write(out, md).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

const HELP: &str = "\
efd — Execution Fingerprint Dictionary (CLUSTER 2021 reproduction)

USAGE: efd <command> [flags]

COMMANDS
  table <1|2|3|4>        regenerate a paper table
  figure2                regenerate Figure 2 (all experiments, both systems)
  evaluate               one experiment: --experiment <kind>
                         [--classifier efd|taxonomist|knn|gaussian-nb]
                         or the adversarial & drift matrix: --scenario
                         <all|cryptomining-masquerade|metric-dropout|node-heterogeneity
                         |input-extrapolation|concept-drift> (comma lists ok)
                         [--backend all|dict|snapshot|sharded|combo|efdb|wal|forest|knn
                         |gaussian-nb] [--intensity X in [0,1], default grid 0..1 by .25]
                         [--seed <u64>] [--out SCENARIO_9.json]
  screen                 rank all 562 metrics by normal-fold F-score [--top N]
  recognize              leave-one-out recognition demo: --run <idx>
  generate               export runs as LDMS-style CSVs: --out <dir> [--count N]
  ingest-csv             recognize a run from CSVs: --dir <path> --run <prefix>
  dump                   train on all runs, write the dictionary: --out <path>
                         [--format efdb|json] (default by extension; .efdb = binary,
                         see docs/FORMAT.md); [--synth-keys N] writes the synthetic
                         serving keyspace instead (pairs with `loadgen --keyspace N`)
  convert                convert a dump between JSON and EFDB: --in <a> --out <b>
                         [--format efdb|json]; verifies the output round-trips
  export-dict            alias of `dump --format json`: --out <path>
  serve                  batch recognition service demo: --load <dump.json|dict.efdb>
                         [--backend snapshot|sharded|combo|efdb] [--queries <csv|json>]
                         [--synth N] [--shards N] [--repeat N]
                         or durable: --wal <dir> [--learn N] [--wal-sync always|batch|none|<n>]
                         [--depth D] — write-ahead logged learning, recovery on restart
                         or daemon: --listen <addr> (e.g. 127.0.0.1:7070) — TCP frame
                         protocol + GET /metrics on one port; [--workers N]
                         [--idle-timeout SECS]; hot reload on SIGHUP or `efd ctl swap`
                         or stacked: --manifest <stack.json> — recognizer.v1 stack
                         (exact -> combo -> ml fallback, first confident verdict
                         wins); works batch or with --listen (hot-swappable)
                         --load also accepts a catalog ref (name@latest, name@vN)
                         with --catalog <dir>
  catalog                versioned artifact store: <publish|list|show|rollback>
                         --dir <dir>; publish: --name <n> --from <dump>
                         [--baseline auto|none] [--baseline-queries N (default 2000)]
                         show/rollback take a reference/name positionally
  diff                   structural dictionary diff: <A> <B> (files or catalog refs
                         with --catalog <dir>) [--format table|json] [--samples N];
                         exit 0 = semantically equal, 3 = different, 1 = error
  loadgen                drive a running daemon: --addr <host:port> [--conns N]
                         [--duration SECS] [--qps N] [--pipeline N] [--keyspace N]
                         [--requests N] [--ping true] [--out BENCH_8.json]
  ctl                    one-shot daemon control: <ping|stats|status|swap|shutdown
                         |metrics> --addr <host:port> [--path <dict>]
  compact                merge a WAL directory into one canonical EFDB segment:
                         --wal <dir> [--out <path>]
  wal-verify             audit a WAL directory offline: --wal <dir> [--strict true]
  bench-snapshot         time persistence + serving cold-start + WAL hot paths, write
                         machine-readable results: [--out BENCH_7.json] [--keys N]
                         [--records N] [--reps N]
  report                 write EXPERIMENTS.md content: [--out <path>]
  help                   this text

COMMON FLAGS
  --subset public|full   dataset variant (default: public, as in the paper)
  --seed <u64>           dataset master seed
  --trees <n>            Taxonomist forest size (default 100)
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprint!("{HELP}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "table" => cmd_table(&args),
        "figure2" => cmd_figure2(&args),
        "evaluate" => cmd_evaluate(&args),
        "screen" => cmd_screen(&args),
        "recognize" => cmd_recognize(&args),
        "generate" => cmd_generate(&args),
        "ingest-csv" => cmd_ingest_csv(&args),
        "dump" => cmd_dump(&args),
        "convert" => cmd_convert(&args),
        "export-dict" => cmd_export_dict(&args),
        "serve" => cmd_serve(&args),
        "catalog" => cmd_catalog(&args),
        // `diff` has a three-way exit contract: 0 = semantically equal,
        // 3 = semantically different, 1 = error.
        "diff" => {
            return match cmd_diff(&args) {
                Ok(true) => ExitCode::from(3),
                Ok(false) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "loadgen" => cmd_loadgen(&args),
        "ctl" => cmd_ctl(&args),
        "compact" => cmd_compact(&args),
        "wal-verify" => cmd_wal_verify(&args),
        "bench-snapshot" => cmd_bench_snapshot(&args),
        "report" => cmd_report(&args),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; see `efd help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
