//! Online and batch statistics.
//!
//! Two consumers drive the design:
//!
//! * The **EFD** needs the mean of a 60-sample window per (node, metric) —
//!   trivial, but it must be *streamable* so the online recognizer can run
//!   during execution (paper §1: "low-latency responses").
//! * The **Taxonomist baseline** needs eleven statistical features per metric
//!   per node over the *whole* execution (mean, std, min, max, 5 percentiles,
//!   skew, kurtosis). Holding full traces for 562 metrics × many runs is
//!   exactly the data-intensity the paper criticizes, so the feature
//!   extractor streams through [`OnlineStats`] (exact moments) and
//!   [`P2Quantile`] (constant-memory percentile estimates).
//!
//! [`OnlineStats`] tracks the first four central moments with Welford/Chan
//! update and merge formulas, so per-thread partials can be reduced in
//! parallel deterministically.

/// Mergeable online accumulator of count/min/max and the first four central
/// moments (mean, M2, M3, M4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether any observation has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Add one observation (Welford's update extended to 4th moment,
    /// Pébay 2008).
    #[inline]
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0)
            + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Add every value of a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merge another accumulator into this one (Chan et al. parallel
    /// formulas) — exact up to floating-point rounding.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let d2 = delta * delta;
        let d3 = d2 * delta;
        let d4 = d2 * d2;

        let m2 = self.m2 + other.m2 + d2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + d3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + d4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * d2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;

        self.mean += delta * nb / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean (NaN when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (NaN when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance with Bessel's correction (NaN when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Skewness (g1). Zero for constant series (M2 == 0).
    pub fn skewness(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        if self.m2 == 0.0 {
            return 0.0;
        }
        (self.n as f64).sqrt() * self.m3 / self.m2.powf(1.5)
    }

    /// Excess kurtosis (g2). Zero for constant series (M2 == 0).
    pub fn kurtosis(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        if self.m2 == 0.0 {
            return 0.0;
        }
        self.n as f64 * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Minimum observation (+inf when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (-inf when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Exact percentile of *already sorted* data, linear interpolation between
/// closest ranks (numpy's default "linear" method). `q` in `[0, 1]`.
///
/// Panics in debug builds if the slice is unsorted; returns NaN when empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    debug_assert!((0.0..=1.0).contains(&q));
    match sorted.len() {
        0 => f64::NAN,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Mean of a slice (NaN when empty). Batch convenience used in tests and
/// small code paths; hot paths use [`OnlineStats`].
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// P² streaming quantile estimator (Jain & Chlamtac, CACM 1985).
///
/// Constant memory (five markers) estimate of a single quantile; accuracy is
/// ample for the Taxonomist feature percentiles (the classifier only needs a
/// stable, monotone summary — see module docs).
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based, as in the paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: usize,
    /// First observations until we have 5.
    init: [f64; 5],
}

impl P2Quantile {
    /// Estimator for quantile `p` in `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1), got {p}");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: [0.0; 5],
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.init[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.q = self.init;
            }
            return;
        }
        self.count += 1;

        // Find cell k such that q[k] <= x < q[k+1], adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[0] <= x < q[4]: find the containing cell.
            let mut k = 0;
            for i in 0..4 {
                if x >= self.q[i] && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate. For fewer than 5 observations, falls back
    /// to the exact percentile of what has been seen. NaN when empty.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.count < 5 {
            let mut v: Vec<f64> = self.init[..self.count].to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            return percentile(&v, self.p);
        }
        self.q[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() <= tol, "{what}: {a} vs {b} (tol {tol})");
    }

    #[test]
    fn online_matches_batch_moments() {
        let mut g = SplitMix64::new(3);
        let xs: Vec<f64> = (0..5000).map(|_| g.next_gaussian() * 3.0 + 10.0).collect();
        let mut s = OnlineStats::new();
        s.extend(&xs);

        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let m3 = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n;
        let m4 = xs.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
        let skew = m3 / var.powf(1.5);
        let kurt = m4 / (var * var) - 3.0;

        assert_close(s.mean(), mean, 1e-9, "mean");
        assert_close(s.variance(), var, 1e-6, "variance");
        assert_close(s.skewness(), skew, 1e-6, "skewness");
        assert_close(s.kurtosis(), kurt, 1e-6, "kurtosis");
        assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn merge_equals_sequential() {
        let mut g = SplitMix64::new(17);
        let xs: Vec<f64> = (0..999).map(|_| g.next_f64() * 100.0).collect();
        let mut whole = OnlineStats::new();
        whole.extend(&xs);

        for split in [1, 5, 500, 998] {
            let (a, b) = xs.split_at(split);
            let mut sa = OnlineStats::new();
            sa.extend(a);
            let mut sb = OnlineStats::new();
            sb.extend(b);
            sa.merge(&sb);
            assert_eq!(sa.count(), whole.count());
            assert_close(sa.mean(), whole.mean(), 1e-9, "merged mean");
            assert_close(sa.variance(), whole.variance(), 1e-7, "merged var");
            assert_close(sa.skewness(), whole.skewness(), 1e-6, "merged skew");
            assert_close(sa.kurtosis(), whole.kurtosis(), 1e-5, "merged kurt");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.extend(&[1.0, 2.0, 3.0]);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn constant_series_has_zero_spread() {
        let mut s = OnlineStats::new();
        s.extend(&[7.0; 100]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.skewness(), 0.0);
        assert_eq!(s.kurtosis(), 0.0);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert!(s.sample_variance().is_nan());
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 2.5);
        assert_eq!(percentile(&[42.0], 0.3), 42.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn p2_matches_exact_on_gaussian() {
        let mut g = SplitMix64::new(8);
        let xs: Vec<f64> = (0..50_000).map(|_| g.next_gaussian()).collect();
        for p in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let mut est = P2Quantile::new(p);
            for &x in &xs {
                est.push(x);
            }
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = percentile(&sorted, p);
            assert_close(est.estimate(), exact, 0.03, &format!("p2 q={p}"));
        }
    }

    #[test]
    fn p2_small_counts_are_exact() {
        let mut est = P2Quantile::new(0.5);
        assert!(est.estimate().is_nan());
        est.push(3.0);
        assert_eq!(est.estimate(), 3.0);
        est.push(1.0);
        est.push(2.0);
        assert_eq!(est.estimate(), 2.0);
    }

    #[test]
    fn p2_monotone_inputs() {
        let mut est = P2Quantile::new(0.9);
        for i in 0..10_000 {
            est.push(i as f64);
        }
        let e = est.estimate();
        assert!((e - 9000.0).abs() < 150.0, "estimate {e}");
    }
}
