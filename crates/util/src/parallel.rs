//! Scoped-thread data parallelism.
//!
//! A tiny, predictable alternative to a global thread pool: [`parallel_map`]
//! spawns scoped workers (`std::thread::scope`), pulls indices off a shared
//! atomic counter (dynamic load balancing — metric screening has wildly
//! uneven per-item cost), and scatters results back *in input order*, so
//! callers get deterministic output regardless of scheduling.
//!
//! Thread count resolution: `EFD_THREADS` env var if set, else
//! `std::thread::available_parallelism()`, always clamped to the item count.
//! Workloads of one item (or one thread) run inline with zero spawn cost.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use for `n_items` work items.
///
/// Honors the `EFD_THREADS` environment variable (values `< 1` are treated
/// as 1); otherwise uses the machine's available parallelism.
pub fn num_threads(n_items: usize) -> usize {
    let hw = std::env::var("EFD_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    hw.min(n_items).max(1)
}

/// Map `f` over `items` in parallel, returning results in input order.
///
/// `f` runs on scoped worker threads; panics in `f` propagate to the caller.
///
/// ```
/// let squares = efd_util::parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_init(items, || (), |(), item| f(item))
}

/// Like [`parallel_map`], but with per-thread mutable state created by
/// `init` (e.g. a scratch buffer or a thread-local RNG).
///
/// Note: which items share a state instance depends on scheduling; for
/// reproducible stochastic work, derive per-item seeds instead of relying
/// on state (see `efd_util::rng::derive_seed`).
pub fn parallel_map_init<T, U, S, I, F>(items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = num_threads(n);
    if workers == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let next = AtomicUsize::new(0);
    // Each worker buffers (index, result) locally, then scatters under a
    // short-lived lock; results end up in input order.
    let out: Mutex<Vec<Option<U>>> = Mutex::new((0..n).map(|_| None).collect());

    // `std::thread::scope` joins all workers on exit and propagates any
    // worker panic to the caller.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&mut state, &items[i])));
                }
                let mut guard = out.lock().expect("scatter lock poisoned");
                for (i, v) in local {
                    guard[i] = Some(v);
                }
            });
        }
    });

    out.into_inner()
        .expect("scatter lock poisoned")
        .into_iter()
        .map(|v| v.expect("all indices filled"))
        .collect()
}

/// Run `f` over `items` in parallel for side effects only.
pub fn parallel_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    let _ = parallel_map(items, |item| {
        f(item);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still produce ordered output.
        let items: Vec<u64> = (0..200).collect();
        let out = parallel_map(&items, |&x| {
            let spins = if x % 17 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn for_each_visits_all() {
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (1..=1000).collect();
        parallel_for_each(&items, |&x| {
            counter.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn map_init_state_reused_within_thread() {
        // The state is a push counter; the sum over all threads must equal
        // the item count even though the per-thread split is nondeterministic.
        let items: Vec<u32> = (0..512).collect();
        let out = parallel_map_init(
            &items,
            || 0u32,
            |calls, &x| {
                *calls += 1;
                (x, *calls)
            },
        );
        assert_eq!(out.len(), 512);
        for (i, (x, calls)) in out.iter().enumerate() {
            assert_eq!(*x, i as u32);
            assert!(*calls >= 1);
        }
    }

    #[test]
    fn single_item_runs_inline() {
        let out = parallel_map(&[7u8], |&x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn num_threads_respects_item_count() {
        assert_eq!(num_threads(0), 1);
        assert_eq!(num_threads(1), 1);
        assert!(num_threads(1_000_000) >= 1);
    }
}
