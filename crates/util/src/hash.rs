//! Fast, non-cryptographic hashing (FxHash algorithm).
//!
//! The EFD's hot path is hash-map lookups keyed by small fixed-size
//! fingerprints (metric id, node id, interval id, rounded-mean bits). The
//! standard library's SipHash is DoS-resistant but slow for such keys; the
//! multiply-xor "Fx" scheme used inside rustc is a much better fit and is
//! re-implemented here (the `rustc-hash` crate is not part of our vetted
//! dependency set).
//!
//! Not suitable for adversarial inputs — fine for telemetry workloads.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit golden
/// ratio variant).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic [`Hasher`] (FxHash).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // unwrap: chunks_exact guarantees 8 bytes.
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash a single `u64` to a well-mixed `u64` (one-shot convenience).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

/// Hash a byte slice to a `u64` (one-shot convenience).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_eq!(hash_bytes(b"nr_mapped_vmstat"), hash_bytes(b"nr_mapped_vmstat"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_u64(1), hash_u64(2));
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"b"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn remainder_lengths_do_not_collide_with_zero_padding() {
        // b"ab" padded to 8 bytes must hash differently from b"ab\0...\0".
        let a = hash_bytes(b"ab");
        let b = hash_bytes(b"ab\0\0\0\0\0\0");
        assert_ne!(a, b);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn reasonable_distribution() {
        // Low-entropy sequential keys should still spread across buckets:
        // count distinct top-8-bit patterns over 4096 sequential hashes.
        let mut seen = FxHashSet::default();
        for i in 0..4096u64 {
            seen.insert(hash_u64(i) >> 56);
        }
        assert!(seen.len() > 200, "only {} distinct high bytes", seen.len());
    }
}
