//! Plain-text and markdown table rendering.
//!
//! The benchmark harness prints every paper table/figure as an aligned text
//! table (`paper vs measured` side by side); EXPERIMENTS.md is generated
//! from the same data via [`TextTable::render_markdown`].

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (default; text columns).
    Left,
    /// Right-aligned (numeric columns).
    Right,
    /// Centered.
    Center,
}

/// A simple table builder that renders to aligned ASCII or markdown.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
    title: Option<String>,
}

impl TextTable {
    /// Start a table with the given column headers (all left-aligned).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Self {
            headers,
            rows: Vec::new(),
            aligns,
            title: None,
        }
    }

    /// Set a title printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Set per-column alignment; missing entries default to [`Align::Left`].
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        for (i, a) in aligns.into_iter().enumerate() {
            if i < self.aligns.len() {
                self.aligns[i] = a;
            }
        }
        self
    }

    /// Append a row; it is padded or truncated to the header width.
    pub fn add_row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let gap = width.saturating_sub(len);
        match align {
            Align::Left => format!("{cell}{}", " ".repeat(gap)),
            Align::Right => format!("{}{cell}", " ".repeat(gap)),
            Align::Center => {
                let left = gap / 2;
                format!("{}{cell}{}", " ".repeat(left), " ".repeat(gap - left))
            }
        }
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let _ = writeln!(out, "{sep}");
        let mut header_line = String::from("|");
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(header_line, " {} |", Self::pad(h, widths[i], Align::Center));
        }
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let mut line = String::from("|");
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, " {} |", Self::pad(cell, widths[i], self.aligns[i]));
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "{sep}");
        out
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "**{t}**\n");
        }
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let dashes: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":--",
                Align::Right => "--:",
                Align::Center => ":-:",
            })
            .collect();
        let _ = writeln!(out, "| {} |", dashes.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Format an F-score the way the paper prints them (two decimals, `1.0`
/// stays `1.0`).
pub fn fmt_score(x: f64) -> String {
    if x.is_nan() {
        return "n/a".to_string();
    }
    let rounded = (x * 100.0).round() / 100.0;
    if (rounded - 1.0).abs() < f64::EPSILON {
        "1.0".to_string()
    } else {
        format!("{rounded:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_alignment() {
        let mut t = TextTable::new(vec!["name", "value"])
            .with_aligns(vec![Align::Left, Align::Right]);
        t.add_row(vec!["alpha", "1"]);
        t.add_row(vec!["b", "12345"]);
        let s = t.render();
        assert!(s.contains("| alpha |     1 |"), "got:\n{s}");
        assert!(s.contains("| b     | 12345 |"), "got:\n{s}");
    }

    #[test]
    fn rows_padded_to_header_width() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["only-one"]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn markdown_shape() {
        let mut t = TextTable::new(vec!["x", "y"]).with_aligns(vec![Align::Left, Align::Right]);
        t.add_row(vec!["1", "2"]);
        let md = t.render_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| x | y |");
        assert_eq!(lines[1], "| :-- | --: |");
        assert_eq!(lines[2], "| 1 | 2 |");
    }

    #[test]
    fn title_rendered() {
        let t = TextTable::new(vec!["h"]).with_title("Table 1: Rounding");
        assert!(t.render().starts_with("Table 1: Rounding"));
        assert!(t.render_markdown().starts_with("**Table 1: Rounding**"));
    }

    #[test]
    fn score_formatting() {
        assert_eq!(fmt_score(1.0), "1.0");
        assert_eq!(fmt_score(0.999), "1.0");
        assert_eq!(fmt_score(0.954), "0.95");
        assert_eq!(fmt_score(0.9549), "0.95");
        assert_eq!(fmt_score(f64::NAN), "n/a");
    }
}
