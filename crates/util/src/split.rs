//! Generic stratified k-fold partitioning.
//!
//! Used by `efd-workload` for the paper's 5-fold "normal fold" experiment
//! and by `efd-core` for the inner cross-validation that selects the
//! rounding depth. Stratification key is generic: any `Ord + Hash` label.

use std::hash::Hash;

use crate::hash::FxHashMap;
use crate::rng::SplitMix64;

/// One train/test partition of item indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldIndices {
    /// Indices used for learning.
    pub train: Vec<usize>,
    /// Indices used for testing.
    pub test: Vec<usize>,
}

/// Stratified k-fold: within every key group, items are shuffled (seeded
/// Fisher–Yates) and dealt round-robin to folds, so each fold's test set
/// holds ≈ `group/k` items of every key. Folds are disjoint, cover all
/// indices, and are deterministic per seed.
pub fn stratified_k_fold_by<K: Ord + Hash + Clone>(
    keys: &[K],
    k: usize,
    seed: u64,
) -> Vec<FoldIndices> {
    assert!(k >= 2, "need at least 2 folds, got {k}");
    let mut groups: FxHashMap<&K, Vec<usize>> = FxHashMap::default();
    for (i, key) in keys.iter().enumerate() {
        groups.entry(key).or_default().push(i);
    }
    // Deterministic iteration order.
    let mut groups: Vec<(&K, Vec<usize>)> = groups.into_iter().collect();
    groups.sort_by(|a, b| a.0.cmp(b.0));

    let mut rng = SplitMix64::new(seed);
    let mut test_sets: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (_, mut idx) in groups {
        for i in (1..idx.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            idx.swap(i, j);
        }
        for (pos, item) in idx.into_iter().enumerate() {
            test_sets[pos % k].push(item);
        }
    }

    (0..k)
        .map(|f| {
            let mut test = test_sets[f].clone();
            test.sort_unstable();
            let mut train: Vec<usize> = (0..k)
                .filter(|&g| g != f)
                .flat_map(|g| test_sets[g].iter().copied())
                .collect();
            train.sort_unstable();
            FoldIndices { train, test }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_cover_stratified() {
        let keys: Vec<u32> = (0..4).flat_map(|g| std::iter::repeat_n(g, 10)).collect();
        let folds = stratified_k_fold_by(&keys, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![false; keys.len()];
        for f in &folds {
            assert_eq!(f.test.len(), 8); // 4 groups × 2 each
            for &i in &f.test {
                assert!(!seen[i]);
                seen[i] = true;
            }
            // Per-group counts equal.
            for g in 0..4u32 {
                let c = f.test.iter().filter(|&&i| keys[i] == g).count();
                assert_eq!(c, 2);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let keys: Vec<&str> = ["a", "b"].repeat(20);
        assert_eq!(
            stratified_k_fold_by(&keys, 4, 9),
            stratified_k_fold_by(&keys, 4, 9)
        );
        assert_ne!(
            stratified_k_fold_by(&keys, 4, 9),
            stratified_k_fold_by(&keys, 4, 10)
        );
    }

    #[test]
    fn small_groups_spread_across_folds() {
        // A group smaller than k: each of its items lands in a distinct fold.
        let keys: Vec<u8> = vec![1, 1, 1, 2, 2, 2, 2, 2];
        let folds = stratified_k_fold_by(&keys, 5, 0);
        let ones_per_fold: Vec<usize> = folds
            .iter()
            .map(|f| f.test.iter().filter(|&&i| keys[i] == 1).count())
            .collect();
        assert!(ones_per_fold.iter().all(|&c| c <= 1));
        assert_eq!(ones_per_fold.iter().sum::<usize>(), 3);
    }
}
