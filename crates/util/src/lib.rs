//! Shared utilities for the EFD workspace.
//!
//! This crate hosts the small, dependency-light building blocks used by every
//! other crate in the workspace:
//!
//! * [`hash`] — a fast FxHash-style hasher and the [`FxHashMap`]/[`FxHashSet`]
//!   aliases used for all hot integer-keyed maps (fingerprint dictionaries,
//!   metric interners). The default SipHash is measurably slower for the
//!   short fixed-size keys the EFD uses.
//! * [`rng`] — SplitMix64 and deterministic seed *derivation*: every
//!   stochastic component in the workspace receives a seed derived from a
//!   master seed plus a stable tag path, so any sub-computation (one run, one
//!   node, one metric) can be re-materialized independently and in parallel
//!   with bit-identical results.
//! * [`stats`] — Welford-style mergeable online moments (mean/var/skew/kurt),
//!   exact percentiles, and a P² streaming quantile estimator. These feed
//!   both the EFD fingerprint means and the Taxonomist-baseline feature
//!   extraction without ever holding full traces in memory.
//! * [`parallel`] — a scoped-thread `parallel_map` with dynamic load
//!   balancing and deterministic output ordering (std scoped threads, no
//!   global pool).
//! * [`table`] — plain-text/markdown table rendering for the experiment
//!   harness so benches can print the paper's tables verbatim.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hash;
pub mod parallel;
pub mod rng;
pub mod split;
pub mod stats;
pub mod table;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use parallel::{num_threads, parallel_for_each, parallel_map, parallel_map_init};
pub use rng::{derive_seed, str_tag, SplitMix64};
pub use split::{stratified_k_fold_by, FoldIndices};
pub use stats::{percentile, OnlineStats, P2Quantile};
pub use table::{Align, TextTable};
