//! Deterministic seed derivation and a small, fast PRNG.
//!
//! Every stochastic component of the workspace (noise processes, workload
//! variation, fold shuffling, forest bootstrapping) is seeded through
//! [`derive_seed`]: a master seed mixed with a stable *tag path* such as
//! `(app, input, repetition, node, metric)`. Two properties matter:
//!
//! 1. **Independence** — changing one tag decorrelates the stream, so the
//!    same run can be re-materialized metric-by-metric, in any order, on any
//!    number of threads, with bit-identical values.
//! 2. **Stability** — tags are explicit integers / interned strings, never
//!    iteration order, so results survive refactoring.
//!
//! [`SplitMix64`] (Steele et al., "Fast splittable pseudorandom number
//! generators") is used both as the mixer and as a cheap standalone PRNG for
//! places where pulling in `rand` machinery is overkill.

use crate::hash::hash_bytes;

/// SplitMix64 PRNG / mixing function.
///
/// Passes BigCrush when used as a generator; its finalizer is also a strong
/// 64→64 bit mixer, which is how [`derive_seed`] uses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)` (Lemire's multiply-shift, slight bias
    /// below 2^-64 — irrelevant for simulation workloads).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Standard normal variate (Box–Muller; one value per call, second
    /// discarded for simplicity — this is not a hot path).
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 > f64::EPSILON {
                let u2 = self.next_f64();
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }
}

/// The SplitMix64 finalizer: a high-quality 64→64 bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from a master seed and a stable tag path.
///
/// ```
/// use efd_util::rng::{derive_seed, str_tag};
/// let master = 0xEFD_2021;
/// let run = derive_seed(master, &[str_tag("ft"), str_tag("X"), 7]);
/// let node = derive_seed(run, &[3]);
/// assert_ne!(run, node);
/// assert_eq!(node, derive_seed(derive_seed(master, &[str_tag("ft"), str_tag("X"), 7]), &[3]));
/// ```
#[inline]
pub fn derive_seed(master: u64, tags: &[u64]) -> u64 {
    let mut acc = mix64(master ^ 0xA076_1D64_78BD_642F);
    for (i, &t) in tags.iter().enumerate() {
        // Mix in the position as well so [a, b] != [b, a].
        acc = mix64(acc ^ mix64(t.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))));
    }
    acc
}

/// Stable 64-bit tag for a string (for use in [`derive_seed`] tag paths).
#[inline]
pub fn str_tag(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First output for seed 0 from the public-domain SplitMix64 C
        // implementation (widely published test vector).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn splitmix_streams_decorrelate() {
        let a: Vec<u64> = {
            let mut g = SplitMix64::new(1);
            (0..64).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SplitMix64::new(2);
            (0..64).map(|_| g.next_u64()).collect()
        };
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn unit_interval() {
        let mut g = SplitMix64::new(42);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut g = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = g.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments() {
        let mut g = SplitMix64::new(99);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = g.next_gaussian();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn derive_seed_order_sensitive() {
        let m = 5;
        assert_ne!(derive_seed(m, &[1, 2]), derive_seed(m, &[2, 1]));
        assert_ne!(derive_seed(m, &[1]), derive_seed(m, &[1, 0]));
        assert_ne!(derive_seed(m, &[]), derive_seed(m, &[0]));
    }

    #[test]
    fn derive_seed_deterministic() {
        assert_eq!(
            derive_seed(11, &[str_tag("sp"), 4]),
            derive_seed(11, &[str_tag("sp"), 4])
        );
    }

    #[test]
    fn str_tags_distinct() {
        assert_ne!(str_tag("sp"), str_tag("bt"));
        assert_ne!(str_tag(""), str_tag("\0"));
    }
}
