//! Property-based tests for the utility primitives.

use proptest::prelude::*;

use efd_util::split::stratified_k_fold_by;
use efd_util::stats::{percentile, OnlineStats, P2Quantile};
use efd_util::{derive_seed, SplitMix64};

proptest! {
    /// Merging any partition of a sample equals processing it whole.
    #[test]
    fn online_stats_merge_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 1..300),
        cut1 in 0usize..300,
        cut2 in 0usize..300,
    ) {
        let a = cut1.min(xs.len());
        let b = cut2.clamp(a, xs.len());

        let mut whole = OnlineStats::new();
        whole.extend(&xs);

        let (mut s1, mut s2, mut s3) = (OnlineStats::new(), OnlineStats::new(), OnlineStats::new());
        s1.extend(&xs[..a]);
        s2.extend(&xs[a..b]);
        s3.extend(&xs[b..]);
        s1.merge(&s2);
        s1.merge(&s3);

        prop_assert_eq!(s1.count(), whole.count());
        prop_assert!((s1.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((s1.variance() - whole.variance()).abs()
            <= 1e-5 * whole.variance().abs().max(1.0));
        prop_assert_eq!(s1.min(), whole.min());
        prop_assert_eq!(s1.max(), whole.max());
    }

    /// Online stats are invariant to shifting (variance & shape moments).
    #[test]
    fn online_stats_shift_invariant_spread(
        xs in prop::collection::vec(-1e3f64..1e3, 2..200),
        shift in -1e5f64..1e5,
    ) {
        let mut a = OnlineStats::new();
        a.extend(&xs);
        let mut b = OnlineStats::new();
        b.extend(&xs.iter().map(|x| x + shift).collect::<Vec<_>>());
        prop_assert!((a.variance() - b.variance()).abs() <= 1e-6 * a.variance().max(1.0));
        prop_assert!((a.mean() + shift - b.mean()).abs() <= 1e-6 * b.mean().abs().max(1.0));
    }

    /// P² stays inside the observed range and is monotone in p.
    #[test]
    fn p2_within_range_and_monotone(
        xs in prop::collection::vec(-1e4f64..1e4, 20..500),
    ) {
        let (lo, hi) = xs.iter().fold((f64::INFINITY, f64::NEG_INFINITY),
            |(lo, hi), &x| (lo.min(x), hi.max(x)));
        let mut estimates = Vec::new();
        for p in [0.1, 0.5, 0.9] {
            let mut q = P2Quantile::new(p);
            for &x in &xs {
                q.push(x);
            }
            let e = q.estimate();
            prop_assert!(e >= lo && e <= hi, "estimate {e} outside [{lo}, {hi}]");
            estimates.push(e);
        }
        prop_assert!(estimates[0] <= estimates[1] + 1e-9);
        prop_assert!(estimates[1] <= estimates[2] + 1e-9);
    }

    /// Exact percentile is monotone in q and clamped to the data range.
    #[test]
    fn percentile_monotone(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
        prop_assert!(percentile(&xs, 0.0) >= xs[0] - 1e-9);
        prop_assert!(percentile(&xs, 1.0) <= xs[xs.len() - 1] + 1e-9);
    }

    /// Stratified k-fold always partitions: disjoint test sets covering
    /// all indices, train = complement.
    #[test]
    fn k_fold_is_a_partition(
        keys in prop::collection::vec(0u8..6, 4..200),
        k in 2usize..8,
        seed in any::<u64>(),
    ) {
        let folds = stratified_k_fold_by(&keys, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![false; keys.len()];
        for f in &folds {
            for &i in &f.test {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            let mut all: Vec<usize> = f.train.iter().chain(&f.test).copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..keys.len()).collect::<Vec<_>>());
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Per-key balance: fold test-set counts of one key differ by at most 1.
    #[test]
    fn k_fold_is_balanced(
        keys in prop::collection::vec(0u8..4, 10..120),
        seed in any::<u64>(),
    ) {
        let k = 5;
        let folds = stratified_k_fold_by(&keys, k, seed);
        for key in 0u8..4 {
            let counts: Vec<usize> = folds
                .iter()
                .map(|f| f.test.iter().filter(|&&i| keys[i] == key).count())
                .collect();
            let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            prop_assert!(mx - mn <= 1, "key {key}: {counts:?}");
        }
    }

    /// Seed derivation is injective-ish over small tag perturbations.
    #[test]
    fn derive_seed_sensitive_to_each_tag(
        master in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(derive_seed(master, &[a]), derive_seed(master, &[b]));
        prop_assert_ne!(derive_seed(master, &[a, b]), derive_seed(master, &[b, a]));
    }

    /// SplitMix64 streams from different seeds do not collide early.
    #[test]
    fn splitmix_streams_distinct(s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let mut g1 = SplitMix64::new(s1);
        let mut g2 = SplitMix64::new(s2);
        let a: Vec<u64> = (0..8).map(|_| g1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| g2.next_u64()).collect();
        prop_assert_ne!(a, b);
    }
}
