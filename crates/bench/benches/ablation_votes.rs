//! Ablation: per-node vs whole-execution recognition.
//!
//! Paper §5: "The Taxonomist evaluates and labels individual nodes,
//! whereas the EFD evaluates the entire execution. … It stands to reason
//! that we recognize an application through all involved nodes." This
//! sweep recognizes test runs from 1, 2, 3 or all 4 nodes and reports
//! accuracy plus tie frequency — node asymmetry (SP/BT) makes single-node
//! views more ambiguous.

use efd_bench::{bench_dataset, headline_metric};
use efd_core::observation::{LabeledObservation, Query};
use efd_core::training::{Efd, EfdConfig};
use efd_core::Verdict;
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::Interval;
use efd_util::table::TextTable;
use efd_util::Align;
use efd_workload::splits::stratified_k_fold;

fn main() {
    let dataset = bench_dataset();
    let metric = headline_metric(&dataset);
    let sel = MetricSelection::single(metric);
    let means: Vec<Vec<f64>> = dataset
        .window_means_all(&sel, Interval::PAPER_DEFAULT)
        .into_iter()
        .map(|per_node| per_node.into_iter().map(|m| m[0]).collect())
        .collect();
    let labels = dataset.labels();
    let folds = stratified_k_fold(&labels, 5, 0x707E5);

    let mut table = TextTable::new(vec![
        "nodes used",
        "accuracy",
        "ambiguous verdicts",
        "unknown verdicts",
    ])
    .with_title("Ablation: recognizing from k of 4 nodes")
    .with_aligns(vec![Align::Left, Align::Right, Align::Right, Align::Right]);

    for k in 1..=4usize {
        let mut correct = 0usize;
        let mut ambiguous = 0usize;
        let mut unknown = 0usize;
        let mut total = 0usize;
        for fold in &folds {
            let train: Vec<LabeledObservation> = fold
                .train
                .iter()
                .map(|&i| LabeledObservation {
                    label: labels[i].clone(),
                    query: Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means[i]),
                })
                .collect();
            let efd = Efd::fit(EfdConfig::single_metric(metric), &train);
            for &i in &fold.test {
                // Observe only the first k nodes of the run.
                let visible = &means[i][..k.min(means[i].len())];
                let q = Query::from_node_means(metric, Interval::PAPER_DEFAULT, visible);
                let r = efd.recognize(&q);
                match &r.verdict {
                    Verdict::Ambiguous(_) => ambiguous += 1,
                    Verdict::Unknown => unknown += 1,
                    // Verdict is #[non_exhaustive]; recognized and any
                    // future variants count as neither ambiguous nor lost.
                    _ => {}
                }
                if r.best() == Some(labels[i].app.as_str()) {
                    correct += 1;
                }
                total += 1;
            }
        }
        table.add_row(vec![
            format!("{k} of 4"),
            format!("{:.3}", correct as f64 / total as f64),
            format!("{:.3}", ambiguous as f64 / total as f64),
            format!("{:.3}", unknown as f64 / total as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: accuracy grows with nodes; single-node views are\n\
         noticeably more ambiguous because SP/BT-style twins only separate\n\
         through their node-usage pattern."
    );
}
