//! Criterion: end-to-end recognition latency per execution — the paper's
//! low-latency claim. One recognition = node_count hash probes + a vote.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efd_bench::{bench_dataset, headline_metric};
use efd_core::observation::{LabeledObservation, Query};
use efd_core::training::{Efd, EfdConfig};
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::Interval;

fn bench(c: &mut Criterion) {
    let dataset = bench_dataset();
    let metric = headline_metric(&dataset);
    let sel = MetricSelection::single(metric);
    let means: Vec<Vec<f64>> = dataset
        .window_means_all(&sel, Interval::PAPER_DEFAULT)
        .into_iter()
        .map(|per_node| per_node.into_iter().map(|m| m[0]).collect())
        .collect();
    let labels = dataset.labels();
    let observations: Vec<LabeledObservation> = (0..dataset.len())
        .map(|i| LabeledObservation {
            label: labels[i].clone(),
            query: Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means[i]),
        })
        .collect();
    let efd = Efd::fit(EfdConfig::single_metric(metric), &observations);

    let q4 = Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means[0]);
    // A 32-node query (L run): find one.
    let l_run = (0..dataset.len())
        .find(|&i| means[i].len() == 32)
        .expect("an L run");
    let q32 = Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means[l_run]);

    let mut group = c.benchmark_group("recognition");
    group.bench_function("recognize_4_nodes", |b| {
        b.iter(|| black_box(efd.recognize(black_box(&q4)).best().is_some()))
    });
    group.bench_function("recognize_32_nodes", |b| {
        b.iter(|| black_box(efd.recognize(black_box(&q32)).best().is_some()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
