//! Regenerates the paper's Table 3: per-metric normal-fold F-scores over
//! the full 562-metric catalog, compared to the paper's excerpt.

use efd_bench::{bench_dataset, timed};
use efd_eval::report::{render_table3, render_table3_top};
use efd_eval::screening::screen_metrics;
use efd_eval::EvalOptions;

fn main() {
    let dataset = bench_dataset();
    let scores = timed("screen 562 metrics × 5 folds", || {
        screen_metrics(&dataset, &EvalOptions::default(), None)
    });
    println!("{}", render_table3(&scores).render());
    println!("{}", render_table3_top(&scores, 20).render());

    let above_95 = scores.iter().filter(|s| s.f1 >= 0.95).count();
    let perfect = scores.iter().filter(|s| s.f1 >= 0.995).count();
    println!(
        "{above_95} of {} metrics reach F >= 0.95 ({perfect} reach 1.0); \
         the paper's excerpt lists 13 such metrics and elides the rest.",
        scores.len()
    );
}
