//! Ablation: combinatorial fingerprints (paper future work §6).
//!
//! > "We can make fingerprints more exclusive by combining multiple system
//! > metrics and / or multiple time intervals."
//!
//! Compares, at fixed depth, (a) the single-metric EFD, (b) *voting* over
//! k metrics (independent lookups, majority), and (c) *conjunctive* combo
//! keys over the same k metrics (one key per node = tuple of rounded
//! means). Normal fold measures accuracy; hard unknown measures
//! exclusiveness — the conjunction should reject unknown applications
//! hardest.

use efd_bench::{bench_dataset, headline_metric};
use efd_core::multi::ComboDictionary;
use efd_core::observation::{LabeledObservation, ObsPoint, Query};
use efd_core::rounding::RoundingDepth;
use efd_core::EfdDictionary;
use efd_eval::EvalOptions;
use efd_ml::metrics::{evaluate, UNKNOWN_LABEL};
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::{Interval, MetricId, NodeId};
use efd_util::table::{fmt_score, TextTable};
use efd_util::Align;
use efd_workload::splits::{leave_one_app_out, stratified_k_fold};

const DEPTH: u8 = 3;

struct MeansCache {
    metrics: Vec<MetricId>,
    /// `[run][node][metric_pos]`
    means: Vec<Vec<Vec<f64>>>,
}

impl MeansCache {
    fn query(&self, run: usize, k: usize) -> Query {
        let mut q = Query::default();
        for (n, per_metric) in self.means[run].iter().enumerate() {
            for (pos, &mean) in per_metric.iter().take(k).enumerate() {
                q.points.push(ObsPoint {
                    metric: self.metrics[pos],
                    node: NodeId(n as u16),
                    interval: Interval::PAPER_DEFAULT,
                    mean,
                });
            }
        }
        q
    }
}

enum Mode {
    Voting,
    Combo,
}

fn run_config(
    cache: &MeansCache,
    labels: &[efd_telemetry::AppLabel],
    k: usize,
    mode: &Mode,
    opts: &EvalOptions,
) -> (f64, f64, usize) {
    let obs = |idx: &[usize]| -> Vec<LabeledObservation> {
        idx.iter()
            .map(|&i| LabeledObservation {
                label: labels[i].clone(),
                query: cache.query(i, k),
            })
            .collect()
    };
    let recognize = |train: &[usize], test: &[usize]| -> (Vec<String>, usize) {
        match mode {
            Mode::Voting => {
                let mut d = EfdDictionary::new(RoundingDepth::new(DEPTH));
                d.learn_all(&obs(train));
                let preds = test
                    .iter()
                    .map(|&i| {
                        d.recognize(&cache.query(i, k))
                            .best()
                            .map(str::to_string)
                            .unwrap_or_else(|| UNKNOWN_LABEL.to_string())
                    })
                    .collect();
                (preds, d.len())
            }
            Mode::Combo => {
                let mut d = ComboDictionary::new(
                    cache.metrics[..k].to_vec(),
                    RoundingDepth::new(DEPTH),
                );
                d.learn_all(&obs(train));
                let preds = test
                    .iter()
                    .map(|&i| {
                        d.recognize(&cache.query(i, k))
                            .best()
                            .map(str::to_string)
                            .unwrap_or_else(|| UNKNOWN_LABEL.to_string())
                    })
                    .collect();
                (preds, d.len())
            }
        }
    };

    // Normal fold.
    let folds = stratified_k_fold(labels, opts.folds, opts.seed);
    let mut normal = Vec::new();
    let mut entries = 0usize;
    for fold in &folds {
        let (preds, n) = recognize(&fold.train, &fold.test);
        entries = entries.max(n);
        let truth: Vec<&str> = fold.test.iter().map(|&i| labels[i].app.as_str()).collect();
        normal.push(evaluate(&truth, &preds).macro_f1_present());
    }
    // Hard unknown.
    let mut hard = Vec::new();
    for (app, removed) in leave_one_app_out(labels) {
        let train: Vec<usize> = (0..labels.len())
            .filter(|i| !removed.contains(i))
            .collect();
        let (preds, _) = recognize(&train, &removed);
        let truth = vec![UNKNOWN_LABEL; removed.len()];
        hard.push(evaluate(&truth, &preds).macro_f1_present());
        let _ = app;
    }
    (
        normal.iter().sum::<f64>() / normal.len() as f64,
        hard.iter().sum::<f64>() / hard.len() as f64,
        entries,
    )
}

fn main() {
    let dataset = bench_dataset();
    // Headline metric + strong companions from Table 3.
    let names = [
        efd_eval::paper::HEADLINE_METRIC,
        "Committed_AS_meminfo",
        "nr_active_anon_vmstat",
        "AnonPages_meminfo",
        "AMO_PKTS_metric_set_nic",
    ];
    let metrics: Vec<MetricId> = names
        .iter()
        .map(|n| dataset.catalog().id(n).unwrap())
        .collect();
    assert_eq!(metrics[0], headline_metric(&dataset));
    let sel = MetricSelection::new(metrics.clone());
    let cache = MeansCache {
        metrics,
        means: dataset.window_means_all(&sel, Interval::PAPER_DEFAULT),
    };
    let labels = dataset.labels();
    let opts = EvalOptions::default();

    let mut table = TextTable::new(vec![
        "config",
        "normal fold F1",
        "hard unknown F1",
        "entries",
    ])
    .with_title(format!(
        "Ablation: combinatorial fingerprints (fixed depth {DEPTH})"
    ))
    .with_aligns(vec![Align::Left, Align::Right, Align::Right, Align::Right]);

    for (label, k, mode) in [
        ("1 metric", 1, Mode::Voting),
        ("3 metrics, voting", 3, Mode::Voting),
        ("3 metrics, conjunctive", 3, Mode::Combo),
        ("5 metrics, voting", 5, Mode::Voting),
        ("5 metrics, conjunctive", 5, Mode::Combo),
    ] {
        let (normal, hard, entries) = run_config(&cache, &labels, k, &mode, &opts);
        table.add_row(vec![
            label.to_string(),
            fmt_score(normal),
            fmt_score(hard),
            entries.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: voting adds robustness (normal fold stays high);\n\
         conjunctive keys are the most exclusive (highest hard-unknown F1)\n\
         at some cost in normal-fold robustness — the paper's future-work\n\
         trade-off, quantified."
    );
}
