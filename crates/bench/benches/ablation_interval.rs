//! Ablation: fingerprint window placement and length.
//!
//! The paper chose `[60:120]` "to avoid the perturbations in the
//! initialization phase while still reporting results relatively early".
//! This sweep quantifies that choice: windows inside the init phase are
//! noisier (run-to-run transient variation breaks fingerprint matching),
//! later windows match `[60:120]`, shorter windows lose averaging.

use efd_bench::{bench_dataset, headline_metric};
use efd_eval::classifier::EfdClassifier;
use efd_eval::experiments::{run_experiment, EvalOptions, ExperimentKind};
use efd_telemetry::Interval;
use efd_util::table::{fmt_score, TextTable};
use efd_util::Align;

fn main() {
    let dataset = bench_dataset();
    let metric = headline_metric(&dataset);
    let opts = EvalOptions::default();

    let mut table = TextTable::new(vec!["window", "normal-fold F1", "note"])
        .with_title("Ablation: fingerprint window (init-phase avoidance)")
        .with_aligns(vec![Align::Left, Align::Right, Align::Left]);

    let windows = [
        (Interval::new(0, 60), "inside init phase"),
        (Interval::new(30, 90), "straddles init phase"),
        (Interval::new(60, 120), "paper default"),
        (Interval::new(120, 180), "later, same length"),
        (Interval::new(180, 240), "latest common window"),
        (Interval::new(60, 90), "short (30 s)"),
        (Interval::new(60, 75), "very short (15 s)"),
    ];
    for (w, note) in windows {
        let mut c = EfdClassifier::with_interval(metric, w);
        let r = run_experiment(ExperimentKind::NormalFold, &mut c, &dataset, &opts);
        table.add_row(vec![w.to_string(), fmt_score(r.mean_f1), note.to_string()]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: [0:60] clearly below [60:120] (the paper's\n\
         motivation for skipping the first minute); post-init windows\n\
         equivalent; short windows slightly worse (less noise averaging)."
    );
}
