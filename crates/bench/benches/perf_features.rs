//! Criterion: feature-extraction throughput — the baseline's per-series
//! cost (11 streamed statistics) vs the EFD's single window mean.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efd_ml::features::extract_into;
use efd_telemetry::{Interval, TimeSeries};
use efd_util::SplitMix64;

fn bench(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let series = TimeSeries::from_values((0..300).map(|_| rng.next_f64() * 1e4).collect());

    let mut group = c.benchmark_group("features");
    group.bench_function("taxonomist_11_stats_300_samples", |b| {
        let mut row = Vec::with_capacity(11);
        b.iter(|| {
            row.clear();
            extract_into(black_box(series.values()).iter().copied(), &mut row);
            black_box(row[0])
        })
    });
    group.bench_function("efd_window_mean_60_samples", |b| {
        b.iter(|| black_box(series.window_mean(black_box(Interval::PAPER_DEFAULT))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
