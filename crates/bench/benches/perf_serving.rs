//! Serving throughput: single-thread oracle vs sharded batch recognition.
//!
//! The `efd_serve` acceptance claim, quantified: freeze the trained
//! dictionary into a [`efd_serve::Snapshot`] at several shard counts and
//! answer a ≥ 10 000-query stream through [`efd_serve::BatchRecognizer`],
//! against the single-threaded [`efd_core::EfdDictionary::recognize`]
//! loop as baseline. Two served modes are measured:
//!
//! * `batch_full` — full [`efd_core::Recognition`] per query (vote
//!   tables, normalized ordering): answer-identical to the oracle.
//! * `batch_best` — the zero-allocation verdict path
//!   ([`efd_serve::BatchRecognizer::best_batch`]): only the application
//!   name the paper's evaluation scores.
//!
//! Speedup comes from two independent levers: worker parallelism
//! (`EFD_THREADS`, default = available cores) and the dense-counter read
//! path that skips the oracle's per-query vote hash maps.
//!
//! A trait-dispatch leg quantifies the engine-API redesign: the same
//! snapshot driven single-threaded through (a) direct `recognize_into`
//! calls (the pre-redesign inherent `recognize_with` shape — identical
//! machine code), (b) a generic `R: Recognize` driver (static dispatch,
//! monomorphized), and (c) a `Box<dyn Recognize>` (vtable dispatch).
//! Acceptance: the generic path is within noise (≥ 0.95×) of the direct
//! path.
//!
//! Knobs: `EFD_SERVE_QUERIES` (default 10000), `EFD_SERVE_REPS`
//! (default 5; best-of-N wall clock per row).

use std::sync::Arc;
use std::time::Instant;

use criterion::black_box;
use efd_bench::{bench_dataset, headline_metric};
use efd_core::engine::{Recognize, VoteScratch};
use efd_core::observation::{LabeledObservation, Query};
use efd_core::training::{Efd, EfdConfig};
use efd_core::RoundingDepth;
use efd_serve::{BatchRecognizer, Snapshot};
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::Interval;
use efd_util::{num_threads, SplitMix64, TextTable};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// Best-of-`reps` wall-clock seconds for one pass over the workload.
fn time_best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let n_queries = env_usize("EFD_SERVE_QUERIES", 10_000);
    let reps = env_usize("EFD_SERVE_REPS", 5);

    let dataset = bench_dataset();
    let metric = headline_metric(&dataset);
    let sel = MetricSelection::single(metric);
    let means: Vec<Vec<f64>> = dataset
        .window_means_all(&sel, Interval::PAPER_DEFAULT)
        .into_iter()
        .map(|per_node| per_node.into_iter().map(|m| m[0]).collect())
        .collect();
    let labels = dataset.labels();
    let observations: Vec<LabeledObservation> = (0..dataset.len())
        .map(|i| LabeledObservation {
            label: labels[i].clone(),
            query: Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means[i]),
        })
        .collect();
    let efd = Efd::fit(
        EfdConfig::single_metric_fixed(metric, RoundingDepth::new(3)),
        &observations,
    );
    let dict = efd.dictionary().clone();

    // ≥ 10k-query stream: the dataset's runs, repeated with ±0.2% jitter.
    let mut rng = SplitMix64::new(0x5E21E);
    let queries: Vec<Query> = (0..n_queries)
        .map(|i| {
            let jittered: Vec<f64> = means[i % means.len()]
                .iter()
                .map(|m| m * (1.0 + (rng.next_f64() - 0.5) * 0.004))
                .collect();
            Query::from_node_means(metric, Interval::PAPER_DEFAULT, &jittered)
        })
        .collect();

    println!(
        "workload: {} queries over a {}-entry dictionary (depth {}), {} worker threads\n",
        queries.len(),
        dict.len(),
        dict.depth(),
        num_threads(queries.len()),
    );

    // Baseline: single-thread oracle loop, full Recognition per query.
    let t_oracle = time_best_of(reps, || {
        for q in &queries {
            black_box(dict.recognize(q).matched_points);
        }
    });
    let qps_oracle = queries.len() as f64 / t_oracle;

    let mut table = TextTable::new(vec![
        "mode", "shards", "time ms", "q/s", "speedup",
    ])
    .with_title("Serving throughput vs single-thread oracle".to_string());
    table.add_row(vec![
        "oracle_single_thread".to_string(),
        "-".to_string(),
        format!("{:.1}", t_oracle * 1e3),
        format!("{qps_oracle:.0}"),
        "1.00x".to_string(),
    ]);

    let mut speedup_at_8_full = 0.0f64;
    let mut speedup_at_8_best = 0.0f64;
    for shards in [1usize, 2, 4, 8, 16] {
        let snapshot = Arc::new(Snapshot::freeze(&dict, shards));
        let server = BatchRecognizer::new(Arc::clone(&snapshot));

        let t_full = time_best_of(reps, || {
            black_box(server.recognize_batch(&queries).len());
        });
        let t_best = time_best_of(reps, || {
            black_box(server.best_batch(&queries).len());
        });
        for (mode, t, track) in [
            ("batch_full", t_full, &mut speedup_at_8_full),
            ("batch_best", t_best, &mut speedup_at_8_best),
        ] {
            let speedup = t_oracle / t;
            if shards == 8 {
                *track = speedup;
            }
            table.add_row(vec![
                mode.to_string(),
                shards.to_string(),
                format!("{:.1}", t * 1e3),
                format!("{:.0}", queries.len() as f64 / t),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    println!("{}", table.render());

    println!(
        "\nacceptance: sharded batch recognition at 8 shards on {} queries:",
        queries.len()
    );
    println!("  full-fidelity batch : {speedup_at_8_full:.2}x single-thread");
    println!("  verdict-only batch  : {speedup_at_8_best:.2}x single-thread");
    let ok = speedup_at_8_full.max(speedup_at_8_best) >= 2.0;
    println!(
        "  >= 2x threshold     : {}",
        if ok { "PASS" } else { "MISS" }
    );

    // ------------------------------------------------------------------
    // Trait-dispatch overhead: the engine API must not tax the hot path.
    // All three drivers are single-threaded over the same snapshot with
    // one reused scratch, so the only variable is the dispatch mechanism.
    // ------------------------------------------------------------------

    /// Generic driver: monomorphizes per backend — this is what
    /// `BatchRecognizer<R>` and every `R: Recognize` call site compile to.
    fn drive<R: Recognize>(backend: &R, queries: &[Query], scratch: &mut VoteScratch) -> usize {
        let mut matched = 0usize;
        for q in queries {
            matched += backend.recognize_into(q, scratch).matched_points;
        }
        matched
    }

    let snapshot = Snapshot::freeze(&dict, 8);
    let boxed: Box<dyn Recognize + Send + Sync> = Box::new(snapshot.clone());
    let mut scratch = VoteScratch::default();

    // Direct method calls on the concrete type — byte-for-byte the
    // pre-redesign inherent `recognize_with` loop.
    let t_direct = time_best_of(reps, || {
        let mut matched = 0usize;
        for q in &queries {
            matched += snapshot.recognize_into(q, &mut scratch).matched_points;
        }
        black_box(matched);
    });
    let t_generic = time_best_of(reps, || {
        black_box(drive(&snapshot, &queries, &mut scratch));
    });
    let t_dyn = time_best_of(reps, || {
        black_box(drive(&boxed, &queries, &mut scratch));
    });

    let mut dispatch = TextTable::new(vec!["dispatch", "time ms", "q/s", "vs direct"])
        .with_title("Engine-API dispatch overhead (single thread, 8 shards)".to_string());
    for (mode, t) in [
        ("direct (inherent shape)", t_direct),
        ("generic R: Recognize", t_generic),
        ("Box<dyn Recognize>", t_dyn),
    ] {
        dispatch.add_row(vec![
            mode.to_string(),
            format!("{:.1}", t * 1e3),
            format!("{:.0}", queries.len() as f64 / t),
            format!("{:.2}x", t_direct / t),
        ]);
    }
    println!("\n{}", dispatch.render());

    let generic_ratio = t_direct / t_generic;
    println!("\nacceptance: generic trait path vs pre-redesign inherent path:");
    println!("  generic/static      : {generic_ratio:.2}x direct");
    println!("  dyn box             : {:.2}x direct", t_direct / t_dyn);
    println!(
        "  >= 0.95x threshold  : {}",
        if generic_ratio >= 0.95 { "PASS" } else { "MISS" }
    );
}
