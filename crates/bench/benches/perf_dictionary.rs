//! Criterion: dictionary insert and lookup throughput (the EFD's
//! "straightforward mechanism of recognition" is a hash probe).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efd_core::{EfdDictionary, Fingerprint, RoundingDepth};
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
use efd_util::SplitMix64;

fn filled(n: usize) -> (EfdDictionary, Vec<f64>) {
    let mut d = EfdDictionary::new(RoundingDepth::new(3));
    let mut rng = SplitMix64::new(1);
    let label = AppLabel::new("ft", "X");
    let mut means = Vec::with_capacity(n);
    for i in 0..n {
        let mean = 1000.0 + rng.next_f64() * 1e6;
        d.insert_raw(
            MetricId((i % 562) as u32),
            NodeId((i % 32) as u16),
            Interval::PAPER_DEFAULT,
            mean,
            &label,
        );
        means.push(mean);
    }
    (d, means)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dictionary");

    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let (d, _) = filled(10_000);
            black_box(d.len())
        })
    });

    let (d, means) = filled(100_000);
    group.bench_function("lookup_hit_100k_entries", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % means.len();
            let fp = Fingerprint::from_raw(
                MetricId((i % 562) as u32),
                NodeId((i % 32) as u16),
                Interval::PAPER_DEFAULT,
                black_box(means[i]),
                RoundingDepth::new(3),
            )
            .unwrap();
            black_box(d.lookup(&fp).is_some())
        })
    });

    group.bench_function("lookup_miss_100k_entries", |b| {
        let mut rng = SplitMix64::new(9);
        b.iter(|| {
            let fp = Fingerprint::from_raw(
                MetricId(600), // metric never inserted
                NodeId(0),
                Interval::PAPER_DEFAULT,
                black_box(rng.next_f64() * 1e6),
                RoundingDepth::new(3),
            )
            .unwrap();
            black_box(d.lookup(&fp).is_none())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
