//! Regenerates the paper's Table 2 (dataset composition), for both the
//! original study counts and the publicized subset we evaluate on.

use efd_workload::{Dataset, DatasetSpec, SubsetKind};

fn main() {
    for (name, subset) in [
        ("full study", SubsetKind::Full),
        ("public artifact", SubsetKind::Public),
    ] {
        let d = Dataset::generate(DatasetSpec {
            subset,
            ..DatasetSpec::default()
        });
        println!(
            "--- {name} ({} runs, {} metrics) ---",
            d.len(),
            d.catalog().len()
        );
        println!("{}", d.table2().render());
    }
    println!(
        "The paper evaluates on the public artifact: one third of the\n\
         repetitions and 562 of the original 721 metrics."
    );
}
