//! Criterion: rounding throughput (the per-sample cost of "pruning").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efd_core::round_to_depth;
use efd_util::SplitMix64;

fn bench(c: &mut Criterion) {
    let mut rng = SplitMix64::new(7);
    let values: Vec<f64> = (0..4096)
        .map(|_| (rng.next_f64() - 0.5) * 2e7)
        .collect();

    let mut group = c.benchmark_group("rounding");
    for depth in [1u8, 3, 6] {
        group.bench_function(format!("depth_{depth}_4096_values"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &v in &values {
                    acc += round_to_depth(black_box(v), depth);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
