//! Regenerates the paper's Table 4: the example EFD over
//! `nr_mapped_vmstat` at fixed rounding depth 2, built from the Table 4
//! subset of applications. The printed dictionary must show the SP/BT key
//! collision and miniAMR's input-dependent fingerprints.

use efd_bench::{bench_dataset, timed};
use efd_eval::report::build_table4_dictionary;

fn main() {
    let dataset = bench_dataset();
    let dict = timed("build example dictionary", || {
        build_table4_dictionary(&dataset)
    });
    println!("{}", dict.render_table4(dataset.catalog()).render());

    let stats = dict.stats();
    println!(
        "entries: {}   labels: {}   apps: {}   exclusive: {}   colliding: {}   (max {} apps/key)",
        stats.entries,
        stats.labels,
        stats.apps,
        stats.exclusive_entries,
        stats.colliding_entries,
        stats.max_apps_per_entry
    );
    let mut amr_means: Vec<f64> = dict
        .entries()
        .filter(|(_, labels)| labels.iter().any(|l| l.app == "miniAMR"))
        .map(|(fp, _)| fp.mean())
        .collect();
    amr_means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    amr_means.dedup();
    println!(
        "\nPaper §5 structure checks:\n\
         - SP/BT collide at depth 2: {}\n\
         - miniAMR spans multiple mean levels across inputs: {} ({} levels)",
        if stats.colliding_entries > 0 {
            "YES"
        } else {
            "NO (!)"
        },
        if amr_means.len() >= 3 { "YES" } else { "NO (!)" },
        amr_means.len()
    );
}
