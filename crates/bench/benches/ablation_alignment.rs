//! Ablation: Shazam-style temporal alignment (paper future work §6).
//!
//! Populates the dictionary with a whole tiling of windows
//! (`[0:60] … [180:240]`) and recognizes streams whose monitoring
//! *attached late* (offset of 1–2 windows). Plain lookups interpret local
//! window k as global window k and fail for shifted streams; the aligned
//! recognizer histograms offsets like Shazam and recovers them.

use efd_bench::{bench_dataset, headline_metric};
use efd_core::align::{query_from_windows, AlignedRecognizer};
use efd_core::observation::{LabeledObservation, ObsPoint, Query};
use efd_core::rounding::RoundingDepth;
use efd_core::EfdDictionary;
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::{Interval, NodeId};
use efd_util::table::TextTable;
use efd_util::Align as ColAlign;
use efd_workload::splits::stratified_k_fold;

fn main() {
    let dataset = bench_dataset();
    let metric = headline_metric(&dataset);
    let sel = MetricSelection::single(metric);
    let tiling = Interval::tiling(60, 240); // 4 windows
    let labels = dataset.labels();

    // Per-run, per-node means for every tiling window:
    // window_means[w][run][node].
    let window_means: Vec<Vec<Vec<f64>>> = tiling
        .iter()
        .map(|&w| {
            dataset
                .window_means_all(&sel, w)
                .into_iter()
                .map(|per_node| per_node.into_iter().map(|m| m[0]).collect())
                .collect()
        })
        .collect();

    let folds = stratified_k_fold(&labels, 5, 0xA11);
    let fold = &folds[0];

    // Learn all tiling windows of the training runs.
    let mut dict = EfdDictionary::new(RoundingDepth::new(3));
    for &i in &fold.train {
        let mut q = Query::default();
        for (wi, &w) in tiling.iter().enumerate() {
            for (n, &mean) in window_means[wi][i].iter().enumerate() {
                q.points.push(ObsPoint {
                    metric,
                    node: NodeId(n as u16),
                    interval: w,
                    mean,
                });
            }
        }
        dict.learn(&LabeledObservation {
            label: labels[i].clone(),
            query: q,
        });
    }
    let aligned = AlignedRecognizer::new(&dict, tiling.clone());

    let mut table = TextTable::new(vec![
        "attach offset",
        "plain accuracy",
        "aligned accuracy",
        "offset recovered",
    ])
    .with_title("Ablation: temporal alignment under late monitoring attachment")
    .with_aligns(vec![ColAlign::Left, ColAlign::Right, ColAlign::Right, ColAlign::Right]);

    for offset in 0..3usize {
        let observable = tiling.len() - offset; // windows we get to see
        let mut plain_ok = 0usize;
        let mut aligned_ok = 0usize;
        let mut offset_ok = 0usize;
        for &i in &fold.test {
            // The stream we observe: global windows offset.. presented as
            // local windows 0.., per node.
            let mut q = Query::default();
            for (n, _) in window_means[0][i].iter().enumerate() {
                let means: Vec<f64> = (0..observable)
                    .map(|k| window_means[k + offset][i][n])
                    .collect();
                let nq = query_from_windows(metric, NodeId(n as u16), &tiling, &means);
                q.points.extend(nq.points);
            }
            let truth = labels[i].app.as_str();
            if dict.recognize(&q).best() == Some(truth) {
                plain_ok += 1;
            }
            if let Some(m) = aligned.recognize(&q).first() {
                if m.app == truth {
                    aligned_ok += 1;
                    if m.offset_windows == offset as i32 {
                        offset_ok += 1;
                    }
                }
            }
        }
        let n = fold.test.len() as f64;
        table.add_row(vec![
            format!("{offset} windows ({}s)", offset * 60),
            format!("{:.2}", plain_ok as f64 / n),
            format!("{:.2}", aligned_ok as f64 / n),
            format!("{:.2}", offset_ok as f64 / n),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: at offset 0 both are equivalent; with late\n\
         attachment the aligned recognizer keeps (most of) its accuracy\n\
         and recovers the true offset, while plain lookups degrade for\n\
         time-varying applications (miniAMR's ramp)."
    );
}
