//! Persistence: JSON text parse vs EFDB binary load, across dictionary
//! sizes.
//!
//! The EFDB acceptance claim, quantified: build synthetic dictionaries
//! with 1k / 10k / 100k keys, dump each as pretty JSON
//! ([`efd_core::serialize`]) and as EFDB ([`efd_core::binfmt`]), and
//! time the *load* paths a serving cold-start would take:
//!
//! * `json_parse`   — [`efd_core::serialize::from_json`] (text parse +
//!   re-insert, today's path);
//! * `efdb_dict`    — [`efd_core::binfmt::read_dictionary`] (validated
//!   binary decode + thaw into an [`efd_core::EfdDictionary`]);
//! * `efdb_snapshot`— [`efd_core::binfmt::read`] +
//!   [`efd_serve::Snapshot::from_efdb`] (the zero-intermediate serve
//!   path: bytes → decoded sections → published snapshot);
//! * `efdb_zerocopy`— [`efd_serve::EfdbSnapshot::load`] (validate the
//!   buffer once, serve in place: no decode, no rebuild — cold-start
//!   cost stops scaling with key count).
//!
//! Acceptance: EFDB load ≥ 5× faster than JSON parse on the 10k-key
//! dictionary, and every restored form answers a 1 000-query batch
//! identically to the original.
//!
//! A second table times the durability path ([`efd_core::wal`]): the
//! per-record cost of a write-ahead `append` under each [`SyncPolicy`]
//! (`always` pays an fsync per record, `batch` amortizes one per 32,
//! `none` leaves syncing to the OS), and the cost of `recover` — replaying
//! the whole log back into a dictionary, the restart path of
//! `efd serve --wal`.
//!
//! Knobs: `EFD_PERSIST_REPS` (default 5, best-of-N wall clock),
//! `EFD_PERSIST_MAX` (default 100000, trims the size sweep),
//! `EFD_PERSIST_WAL` (default 2000, WAL records per append run).

use std::time::Instant;

use criterion::black_box;
use efd_core::observation::{LabeledObservation, ObsPoint, Query};
use efd_core::wal::{self, LearnRecord, SyncPolicy, WalDir, WalOptions, WalRecord};
use efd_core::{binfmt, serialize, EfdDictionary, RoundingDepth};
use efd_serve::{EfdbSnapshot, Recognize, Snapshot};
use efd_telemetry::catalog::taxonomist_catalog;
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
use efd_util::{SplitMix64, TextTable};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn time_best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Key `i`'s mean: unique at rounding depth 6, so a dictionary of `keys`
/// inserts holds exactly `keys` entries.
fn key_mean(i: usize) -> f64 {
    100_000.0 + i as f64
}

/// Synthetic dictionary with exactly `keys` entries spread over 32
/// metrics × 64 nodes, 50 apps × 4 input sizes.
fn build_dict(keys: usize, metrics: &[MetricId]) -> EfdDictionary {
    const INPUTS: [&str; 4] = ["X", "Y", "Z", "L"];
    let mut dict = EfdDictionary::new(RoundingDepth::new(6));
    for i in 0..keys {
        let label = AppLabel::new(format!("app{:03}", i % 50), INPUTS[(i / 50) % 4]);
        dict.insert_raw(
            metrics[i % metrics.len()],
            NodeId(((i / metrics.len()) % 64) as u16),
            Interval::PAPER_DEFAULT,
            key_mean(i),
            &label,
        );
    }
    dict
}

/// 8-point queries over random keys; ~10% of the indices fall past the
/// learned range and miss (the Unknown path must round-trip too).
fn query_batch(n: usize, keys: usize, metrics: &[MetricId]) -> Vec<Query> {
    let mut rng = SplitMix64::new(0xEFDB);
    (0..n)
        .map(|_| {
            let points = (0..8)
                .map(|_| {
                    let i = (rng.next_u64() as usize) % (keys + keys / 10);
                    ObsPoint {
                        metric: metrics[i % metrics.len()],
                        node: NodeId(((i / metrics.len()) % 64) as u16),
                        interval: Interval::PAPER_DEFAULT,
                        mean: key_mean(i),
                    }
                })
                .collect();
            Query { points }
        })
        .collect()
}

fn main() {
    let reps = env_usize("EFD_PERSIST_REPS", 5);
    let max_keys = env_usize("EFD_PERSIST_MAX", 100_000);

    let catalog = taxonomist_catalog();
    let metrics: Vec<MetricId> = catalog.ids().take(32).collect();

    let mut table = TextTable::new(vec![
        "keys",
        "json bytes",
        "efdb bytes",
        "json parse ms",
        "efdb dict ms",
        "efdb snapshot ms",
        "efdb zerocopy ms",
        "load speedup",
    ])
    .with_title("Persistence: JSON parse vs EFDB load (best-of-N)".to_string());

    let mut speedup_at_10k = 0.0f64;
    let mut equivalence_ok = true;
    for keys in [1_000usize, 10_000, 100_000] {
        if keys > max_keys {
            continue;
        }
        let dict = build_dict(keys, &metrics);
        assert_eq!(dict.len(), keys, "synthetic keys must be distinct");

        let json = serialize::to_json(&dict, &catalog);
        let bytes = binfmt::write_dictionary(&dict, &catalog);

        let t_json = time_best_of(reps, || {
            black_box(serialize::from_json(&json, &catalog).unwrap().len());
        });
        let t_efdb = time_best_of(reps, || {
            black_box(binfmt::read_dictionary(&bytes, &catalog).unwrap().len());
        });
        let t_snap = time_best_of(reps, || {
            let efdb = binfmt::read(&bytes).unwrap();
            black_box(Snapshot::from_efdb(&efdb, &catalog, 8).unwrap().len());
        });
        // Pre-share the buffer so the leg times validation + indexing,
        // not a byte copy (the serving path holds an `Arc<[u8]>` anyway).
        let shared: std::sync::Arc<[u8]> = bytes.clone().into();
        let t_zero = time_best_of(reps, || {
            black_box(
                EfdbSnapshot::load(std::sync::Arc::clone(&shared), &catalog)
                    .unwrap()
                    .len(),
            );
        });

        let speedup = t_json / t_efdb;
        if keys == 10_000 {
            speedup_at_10k = speedup;
        }

        // Round-trip equivalence on a 1k-query batch: JSON-restored,
        // EFDB-restored, and the served snapshot all answer like the
        // original.
        let via_json = serialize::from_json(&json, &catalog).unwrap();
        let via_efdb = binfmt::read_dictionary(&bytes, &catalog).unwrap();
        let snap = Snapshot::from_efdb(&binfmt::read(&bytes).unwrap(), &catalog, 8).unwrap();
        let zero = EfdbSnapshot::load(std::sync::Arc::clone(&shared), &catalog).unwrap();
        for q in query_batch(1_000, keys, &metrics) {
            let expect = dict.recognize(&q);
            equivalence_ok &= via_json.recognize(&q) == expect;
            equivalence_ok &= via_efdb.recognize(&q) == expect;
            let expect = expect.normalized();
            equivalence_ok &= snap.recognize(&q) == expect;
            equivalence_ok &= zero.recognize(&q) == expect;
        }

        table.add_row(vec![
            keys.to_string(),
            json.len().to_string(),
            bytes.len().to_string(),
            format!("{:.2}", t_json * 1e3),
            format!("{:.2}", t_efdb * 1e3),
            format!("{:.2}", t_snap * 1e3),
            format!("{:.3}", t_zero * 1e3),
            format!("{speedup:.1}x"),
        ]);
    }
    println!("{}", table.render());

    // ---- Durability: WAL append + recovery replay -------------------
    let wal_records = env_usize("EFD_PERSIST_WAL", 2_000);
    let stream: Vec<LabeledObservation> = (0..wal_records)
        .map(|i| LabeledObservation {
            label: AppLabel::new(format!("app{:03}", i % 50), "X"),
            query: Query {
                points: (0..4)
                    .map(|n| ObsPoint {
                        metric: metrics[0],
                        node: NodeId(n as u16),
                        interval: Interval::PAPER_DEFAULT,
                        mean: key_mean(i * 4 + n),
                    })
                    .collect(),
            },
        })
        .collect();
    let records: Vec<WalRecord> = stream
        .iter()
        .map(|o| WalRecord::Learn(LearnRecord::from_observation(o, &catalog)))
        .collect();

    let mut wal_table = TextTable::new(vec![
        "sync policy",
        "records",
        "append ms",
        "us/record",
        "recover ms",
        "replayed",
    ])
    .with_title("Durability: WAL append + recovery replay (best-of-N)".to_string());

    let mut replay_ok = true;
    for (name, sync) in [
        ("always", SyncPolicy::Always),
        ("batch", SyncPolicy::EveryN(32)),
        ("none", SyncPolicy::Never),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "efd-persist-wal-{name}-{}",
            std::process::id()
        ));
        let options = WalOptions {
            sync,
            // Keep the whole run in one log: this leg times append +
            // replay, not segment freezing.
            segment_bytes: u64::MAX,
        };
        let t_append = time_best_of(reps, || {
            let _ = std::fs::remove_dir_all(&dir);
            let (mut w, _) =
                WalDir::open(&dir, RoundingDepth::new(6), &catalog, options).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
        });
        let t_recover = time_best_of(reps, || {
            black_box(wal::recover(&dir, &catalog).unwrap().dictionary.len());
        });
        let recovery = wal::recover(&dir, &catalog).unwrap();
        replay_ok &= recovery.replayed == wal_records && recovery.tail_fault.is_none();
        wal_table.add_row(vec![
            name.to_string(),
            wal_records.to_string(),
            format!("{:.2}", t_append * 1e3),
            format!("{:.2}", t_append * 1e6 / wal_records as f64),
            format!("{:.2}", t_recover * 1e3),
            recovery.replayed.to_string(),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("{}", wal_table.render());

    println!("\nacceptance:");
    println!(
        "  EFDB load vs JSON parse, 10k keys : {speedup_at_10k:.1}x (threshold 5x) — {}",
        if speedup_at_10k >= 5.0 { "PASS" } else { "MISS" }
    );
    println!(
        "  1k-query round-trip equivalence   : {}",
        if equivalence_ok { "PASS" } else { "FAIL" }
    );
    println!(
        "  WAL full-stream recovery replay   : {}",
        if replay_ok { "PASS" } else { "FAIL" }
    );
}
