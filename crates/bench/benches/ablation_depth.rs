//! Ablation: rounding depth (the EFD's only tunable).
//!
//! Sweeps fixed depths 1–6 plus the paper's auto (inner-CV) policy on the
//! headline metric and reports normal-fold F1 together with dictionary
//! structure — the exclusiveness/repetition trade-off of paper §3:
//! no pruning → precise, exclusive, non-repeating keys; excessive pruning
//! → generic, colliding keys.

use efd_bench::{bench_dataset, headline_metric};
use efd_core::observation::{LabeledObservation, Query};
use efd_core::rounding::RoundingDepth;
use efd_core::training::{DepthPolicy, Efd, EfdConfig};
use efd_eval::EvalOptions;
use efd_ml::metrics::{evaluate, UNKNOWN_LABEL};
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::Interval;
use efd_util::table::{fmt_score, TextTable};
use efd_util::Align;
use efd_workload::splits::stratified_k_fold;

fn main() {
    let dataset = bench_dataset();
    let metric = headline_metric(&dataset);
    let sel = MetricSelection::single(metric);
    let means: Vec<Vec<f64>> = dataset
        .window_means_all(&sel, Interval::PAPER_DEFAULT)
        .into_iter()
        .map(|per_node| per_node.into_iter().map(|m| m[0]).collect())
        .collect();
    let labels = dataset.labels();
    let opts = EvalOptions::default();
    let folds = stratified_k_fold(&labels, opts.folds, opts.seed);

    let obs = |idx: &[usize]| -> Vec<LabeledObservation> {
        idx.iter()
            .map(|&i| LabeledObservation {
                label: labels[i].clone(),
                query: Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means[i]),
            })
            .collect()
    };

    let mut table = TextTable::new(vec![
        "depth",
        "normal-fold F1",
        "entries",
        "exclusive",
        "colliding",
        "labels/entry",
    ])
    .with_title(format!(
        "Ablation: rounding depth on {} (exclusiveness vs repetition)",
        efd_eval::paper::HEADLINE_METRIC
    ))
    .with_aligns(vec![Align::Right; 6]);

    let policies: Vec<(String, DepthPolicy)> = (1..=6)
        .map(|d| (d.to_string(), DepthPolicy::Fixed(RoundingDepth::new(d))))
        .chain(std::iter::once((
            "auto (CV)".to_string(),
            DepthPolicy::default(),
        )))
        .collect();

    for (name, policy) in policies {
        let mut f1s = Vec::new();
        let mut chosen = Vec::new();
        for fold in &folds {
            let efd = Efd::fit(
                EfdConfig {
                    metrics: vec![metric],
                    intervals: vec![Interval::PAPER_DEFAULT],
                    depth: policy.clone(),
                },
                &obs(&fold.train),
            );
            chosen.push(efd.depth().get());
            let truth: Vec<&str> = fold.test.iter().map(|&i| labels[i].app.as_str()).collect();
            let preds: Vec<String> = fold
                .test
                .iter()
                .map(|&i| {
                    let q = Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means[i]);
                    efd.recognize(&q)
                        .best()
                        .map(str::to_string)
                        .unwrap_or_else(|| UNKNOWN_LABEL.to_string())
                })
                .collect();
            f1s.push(evaluate(&truth, &preds).macro_f1_present());
        }
        let mean_f1 = f1s.iter().sum::<f64>() / f1s.len() as f64;

        // Full-data dictionary for structure stats at this policy.
        let efd_full = Efd::fit(
            EfdConfig {
                metrics: vec![metric],
                intervals: vec![Interval::PAPER_DEFAULT],
                depth: policy,
            },
            &obs(&(0..dataset.len()).collect::<Vec<_>>()),
        );
        let stats = efd_full.dictionary().stats();
        let label = if name == "auto (CV)" {
            format!("auto→{}", chosen[0])
        } else {
            name
        };
        table.add_row(vec![
            label,
            fmt_score(mean_f1),
            stats.entries.to_string(),
            stats.exclusive_entries.to_string(),
            stats.colliding_entries.to_string(),
            format!("{:.2}", stats.mean_labels_per_entry),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: depth 1 over-prunes (few generic colliding keys),\n\
         mid depths peak, very deep depths over-fit (many exclusive keys\n\
         that test runs miss); auto picks the peak from training data only."
    );
}
