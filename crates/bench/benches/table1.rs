//! Regenerates the paper's Table 1 (rounding-depth mechanism).

fn main() {
    println!("{}", efd_eval::report::render_table1().render());
    println!(
        "('-' cells: depth exceeds the value's significant digits; the\n\
         rounding is the identity there, as in the paper.)"
    );
}
