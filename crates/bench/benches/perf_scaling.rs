//! Criterion: recognition latency vs dictionary size — the MODA
//! requirement that responses stay low-latency as the fingerprint store
//! grows over months of operation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use efd_core::observation::Query;
use efd_core::{EfdDictionary, RoundingDepth};
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
use efd_util::SplitMix64;

fn dict_with(entries: usize) -> EfdDictionary {
    let mut d = EfdDictionary::new(RoundingDepth::new(4));
    let mut rng = SplitMix64::new(11);
    let apps = ["ft", "mg", "sp", "lu", "bt", "cg"];
    let mut n = 0usize;
    while d.len() < entries {
        let app = apps[n % apps.len()];
        d.insert_raw(
            MetricId((n % 562) as u32),
            NodeId((n % 4) as u16),
            Interval::PAPER_DEFAULT,
            1000.0 + rng.next_f64() * 1e7,
            &AppLabel::new(app, "X"),
        );
        n += 1;
    }
    d
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    for entries in [100usize, 10_000, 1_000_000] {
        let d = dict_with(entries);
        let q = Query::from_node_means(
            MetricId(0),
            Interval::PAPER_DEFAULT,
            &[5e6, 6e6, 7e6, 8e6],
        );
        group.bench_with_input(
            BenchmarkId::new("recognize_vs_entries", entries),
            &entries,
            |b, _| b.iter(|| black_box(d.recognize(black_box(&q)).matched_points)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
