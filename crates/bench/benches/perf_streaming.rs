//! Criterion: online-recognition ingest throughput — per-sample cost of
//! feeding live telemetry through the streaming recognizer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efd_core::observation::{LabeledObservation, Query};
use efd_core::online::OnlineRecognizer;
use efd_core::{EfdDictionary, RoundingDepth};
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};

fn bench(c: &mut Criterion) {
    let metric = MetricId(0);
    let mut dict = EfdDictionary::new(RoundingDepth::new(2));
    dict.learn(&LabeledObservation {
        label: AppLabel::new("ft", "X"),
        query: Query::from_node_means(
            metric,
            Interval::PAPER_DEFAULT,
            &[6000.0, 6000.0, 6000.0, 6000.0],
        ),
    });
    let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();

    let mut group = c.benchmark_group("streaming");
    group.bench_function("full_job_4_nodes_121s", |b| {
        b.iter(|| {
            let mut rec =
                OnlineRecognizer::new(&dict, &[metric], &nodes, vec![Interval::PAPER_DEFAULT]);
            let mut verdicts = 0;
            for t in 0..=120u32 {
                for &n in &nodes {
                    if rec.push(n, metric, t, black_box(6003.0)).is_some() {
                        verdicts += 1;
                    }
                }
            }
            black_box(verdicts)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
