//! Regenerates the paper's Figure 2: F-scores of the EFD (1 metric, first
//! 2 minutes) vs the Taxonomist baseline (562 metrics, whole window) on
//! all five experiments, printed next to the paper's reported bars.
//!
//! Set `EFD_WRITE_REPORT=<path>` to also write the EXPERIMENTS.md content
//! (the repository's EXPERIMENTS.md is generated this way).

use efd_bench::{bench_dataset, bench_taxonomist_config, headline_metric, timed};
use efd_eval::classifier::{EfdClassifier, TaxonomistClassifier};
use efd_eval::experiments::{run_experiment, EvalOptions, ExperimentKind, ExperimentResult};
use efd_eval::report::render_figure2;
use efd_eval::screening::screen_metrics;

fn main() {
    let dataset = bench_dataset();
    let opts = EvalOptions::default();
    let metric = headline_metric(&dataset);
    let mut results: Vec<ExperimentResult> = Vec::new();

    let mut efd = EfdClassifier::new(metric);
    for kind in ExperimentKind::ALL {
        let r = timed(&format!("EFD {kind}"), || {
            run_experiment(kind, &mut efd, &dataset, &opts)
        });
        println!("  EFD {kind}: F = {:.3}", r.mean_f1);
        results.push(r);
    }

    let mut tax = TaxonomistClassifier::new(bench_taxonomist_config());
    for kind in ExperimentKind::ALL {
        let r = timed(&format!("Taxonomist {kind}"), || {
            run_experiment(kind, &mut tax, &dataset, &opts)
        });
        println!("  Taxonomist {kind}: F = {:.3}", r.mean_f1);
        results.push(r);
    }

    println!();
    println!("{}", render_figure2(&results).render());
    println!(
        "Data diet: EFD used 1/{} metrics and the [60:120] window only.",
        dataset.catalog().len()
    );

    if let Ok(path) = std::env::var("EFD_WRITE_REPORT") {
        let scores = timed("table 3 screening for report", || {
            screen_metrics(&dataset, &opts, None)
        });
        let md = efd_eval::report::experiments_markdown(&results, &scores, &dataset);
        std::fs::write(&path, md).expect("write report");
        println!("wrote {path}");
    }
}
