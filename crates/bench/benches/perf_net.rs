//! Network daemon throughput over loopback: an in-process
//! [`efd_serve::net::Server`] over a synthetic keyspace, driven by the
//! pipelined [`efd_serve::net::loadgen`] client.
//!
//! This is the socket-inclusive companion to `perf_serving`: every
//! verdict here pays frame decode, catalog lookup, recognition, frame
//! encode, and a loopback round trip. The acceptance claim behind
//! `BENCH_8.json` — ≥ 50 000 verdicts/s sustained against a 1M-key
//! EFDB — is the CLI-level version of this bench (`efd serve --listen`
//! driven by `efd loadgen --keyspace`); this target tracks the same
//! path in-process so regressions show up in `cargo bench` without a
//! daemon orchestration step.
//!
//! Knobs: `EFD_NET_KEYS` (default 100000), `EFD_NET_SECS` per row
//! (default 2), `EFD_NET_WORKERS` (default 4).

use std::sync::Arc;

use efd_core::{EfdDictionary, LabeledObservation, Query, RoundingDepth};
use efd_serve::net::loadgen::{run, LoadgenConfig};
use efd_serve::net::{Engine, Server, ServerConfig};
use efd_serve::Snapshot;
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
use efd_util::TextTable;

/// Nodes the synthetic keyspace cycles over (matches the CLI's
/// `dump --synth-keys` / `loadgen --keyspace` generator shape).
const NODES: u16 = 64;
/// Nodes per `RECOGNIZE` payload.
const QUERY_NODES: usize = 8;
const METRIC: MetricId = MetricId(0);
const METRIC_NAME: &str = "nr_mapped_vmstat";
const WINDOW: Interval = Interval::PAPER_DEFAULT;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// Key `i`: `(METRIC, node i % NODES, WINDOW, mean 100000 + i)` labeled
/// `app{i % 50}` — distinct, densely packed keys at depth 6.
fn synth_dictionary(keys: usize) -> EfdDictionary {
    let mut d = EfdDictionary::new(RoundingDepth::new(6));
    for i in 0..keys {
        let q = Query {
            points: vec![efd_core::ObsPoint {
                metric: METRIC,
                node: NodeId((i % NODES as usize) as u16),
                interval: WINDOW,
                mean: 100_000.0 + i as f64,
            }],
        };
        d.learn(&LabeledObservation {
            label: AppLabel::new(format!("app{:03}", i % 50), "X"),
            query: q,
        });
    }
    d
}

/// `RECOGNIZE` payloads aligned to NODES-key blocks, so payload means
/// land on the learned keys of nodes `0..QUERY_NODES`; block indices a
/// little past the keyspace produce misses (~9%).
fn synth_payloads(keys: usize, count: usize) -> Vec<String> {
    let blocks = (keys / NODES as usize).max(1);
    let span = blocks + blocks / 10 + 1;
    (0..count)
        .map(|i| {
            let i0 = (i % span) * NODES as usize;
            let means: Vec<String> = (0..QUERY_NODES)
                .map(|j| format!("{}", 100_000.0 + (i0 + j) as f64))
                .collect();
            format!(
                "RECOGNIZE {METRIC_NAME} {} {} {}",
                WINDOW.start,
                WINDOW.end,
                means.join(" ")
            )
        })
        .collect()
}

fn main() {
    let keys = env_usize("EFD_NET_KEYS", 100_000);
    let secs = env_usize("EFD_NET_SECS", 2);
    let workers = env_usize("EFD_NET_WORKERS", 4);

    eprintln!("building {keys}-key synthetic dictionary ...");
    let dict = synth_dictionary(keys);
    let engine = Engine::fixed(Arc::new(Snapshot::freeze(&dict, 64)), dict.len(), "snapshot");
    let mut cfg = ServerConfig::new(small_catalog());
    cfg.workers = workers;
    let server = Server::start("127.0.0.1:0", cfg, engine).expect("daemon starts");
    let addr = server.local_addr().to_string();
    let payloads = synth_payloads(keys, 512);

    let mut table = TextTable::new(vec![
        "conns", "pipeline", "verdicts/s", "p50 µs", "p99 µs", "errors",
    ])
    .with_title(format!(
        "Daemon throughput over loopback ({keys} keys, {workers} workers)"
    ));
    for (conns, pipeline) in [(1, 1), (1, 32), (4, 32), (8, 32)] {
        let mut lg = LoadgenConfig::new(addr.clone());
        lg.connections = conns;
        lg.pipeline = pipeline;
        lg.duration = std::time::Duration::from_secs(secs as u64);
        lg.payloads = payloads.clone();
        let report = run(&lg).expect("loadgen run");
        table.add_row(vec![
            conns.to_string(),
            pipeline.to_string(),
            format!("{:.0}", report.qps),
            format!("{:.0}", report.latency.p50 * 1e6),
            format!("{:.0}", report.latency.p99 * 1e6),
            report.errors.to_string(),
        ]);
    }
    server.shutdown();
    server.join();
    println!("{}", table.render());
}
