//! Criterion: telemetry-generation throughput (the simulation substrate).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::Interval;
use efd_workload::{Dataset, DatasetSpec};

fn bench(c: &mut Criterion) {
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let one = MetricSelection::single(dataset.catalog().id("nr_mapped_vmstat").unwrap());
    let all = MetricSelection::new(dataset.catalog().ids().collect());

    let mut group = c.benchmark_group("generator");
    group.bench_function("materialize_1_metric_300s_4_nodes", |b| {
        b.iter(|| black_box(dataset.materialize(black_box(0), &one).sample_count()))
    });
    group.bench_function("materialize_9_metrics_300s_4_nodes", |b| {
        b.iter(|| black_box(dataset.materialize(black_box(0), &all).sample_count()))
    });
    group.bench_function("window_means_fast_path_1_metric", |b| {
        b.iter(|| {
            black_box(
                dataset
                    .window_means(black_box(0), &one, Interval::PAPER_DEFAULT)
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
