//! Criterion: learning cost — EFD dictionary build vs the Taxonomist
//! baseline's random-forest training. This is the paper's data-diet claim
//! turned into wall-clock: the EFD learns from 338 window means, the
//! baseline from whole-window features of every metric.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efd_bench::{bench_dataset, headline_metric};
use efd_core::observation::{LabeledObservation, Query};
use efd_core::rounding::RoundingDepth;
use efd_core::training::{DepthPolicy, Efd, EfdConfig};
use efd_ml::features::FeatureMatrix;
use efd_ml::forest::{RandomForest, RandomForestParams};
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::Interval;

fn bench(c: &mut Criterion) {
    let dataset = bench_dataset();
    let metric = headline_metric(&dataset);
    let sel = MetricSelection::single(metric);
    let means: Vec<Vec<f64>> = dataset
        .window_means_all(&sel, Interval::PAPER_DEFAULT)
        .into_iter()
        .map(|per_node| per_node.into_iter().map(|m| m[0]).collect())
        .collect();
    let labels = dataset.labels();
    let observations: Vec<LabeledObservation> = (0..dataset.len())
        .map(|i| LabeledObservation {
            label: labels[i].clone(),
            query: Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means[i]),
        })
        .collect();

    let mut group = c.benchmark_group("learning");
    group.sample_size(20);

    group.bench_function("efd_learn_all_runs_fixed_depth", |b| {
        b.iter(|| {
            let efd = Efd::fit(
                EfdConfig {
                    metrics: vec![metric],
                    intervals: vec![Interval::PAPER_DEFAULT],
                    depth: DepthPolicy::Fixed(RoundingDepth::new(3)),
                },
                black_box(&observations),
            );
            black_box(efd.dictionary().len())
        })
    });

    group.bench_function("efd_learn_all_runs_auto_depth", |b| {
        b.iter(|| {
            let efd = Efd::fit(EfdConfig::single_metric(metric), black_box(&observations));
            black_box(efd.depth().get())
        })
    });

    // Baseline forest on a feature matrix of comparable row count. To keep
    // criterion iterations tractable we restrict to one node sample per
    // run and a 9-metric (99-feature) slice; the full 562-metric fit is
    // measured once by the figure2 bench.
    let small = efd_telemetry::catalog::small_catalog();
    let small_sel = MetricSelection::new(small.ids().collect());
    let small_ds = efd_workload::Dataset::with_catalog(
        efd_workload::DatasetSpec::default(),
        small,
    );
    let mut fm = FeatureMatrix::default();
    for i in 0..small_ds.len() {
        let trace = small_ds.materialize(i, &small_sel);
        fm.push_trace(&trace, i, None);
    }
    let classes: Vec<String> = {
        let mut c: Vec<String> = fm.labels.clone();
        c.sort();
        c.dedup();
        c
    };
    let y: Vec<usize> = fm
        .labels
        .iter()
        .map(|l| classes.iter().position(|c| c == l).unwrap())
        .collect();

    group.sample_size(10);
    group.bench_function("forest_train_20_trees_99_features", |b| {
        b.iter(|| {
            let f = RandomForest::fit(
                RandomForestParams {
                    n_trees: 20,
                    ..Default::default()
                },
                black_box(&fm.rows),
                &y,
                classes.len(),
            );
            black_box(f.n_trees())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
