//! Shared helpers for the bench targets.
//!
//! Every paper artifact (Tables 1–4, Figure 2) has a `harness = false`
//! bench that regenerates it; `cargo bench --workspace` therefore re-runs
//! the whole evaluation. Knobs:
//!
//! * `EFD_BENCH_TREES` — forest size for the Taxonomist baseline
//!   (default 50; the paper-scale 100 doubles runtime).
//! * `EFD_BENCH_SUBSET=full` — use the full-repetition dataset instead of
//!   the public subset the paper actually evaluated on.
//! * `EFD_THREADS` — worker threads (default: all cores).

use efd_ml::taxonomist::TaxonomistConfig;
use efd_workload::{Dataset, DatasetSpec, SubsetKind};

/// The evaluation dataset (public subset by default, 562-metric catalog).
pub fn bench_dataset() -> Dataset {
    let subset = match std::env::var("EFD_BENCH_SUBSET").as_deref() {
        Ok("full") => SubsetKind::Full,
        _ => SubsetKind::Public,
    };
    Dataset::generate(DatasetSpec {
        subset,
        ..DatasetSpec::default()
    })
}

/// Baseline configuration for benches.
pub fn bench_taxonomist_config() -> TaxonomistConfig {
    let n_trees = std::env::var("EFD_BENCH_TREES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    TaxonomistConfig {
        n_trees,
        ..Default::default()
    }
}

/// The headline metric's id in a dataset.
pub fn headline_metric(dataset: &Dataset) -> efd_telemetry::MetricId {
    dataset
        .catalog()
        .id(efd_eval::paper::HEADLINE_METRIC)
        .expect("headline metric present")
}

/// Wall-clock a closure, printing the elapsed time.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    println!("[{label}: {:.1?}]", start.elapsed());
    out
}
